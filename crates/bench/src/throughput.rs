//! Corpus-scale throughput benchmark for the dedup-aware batch layer.
//!
//! Deployed bytecode is massively duplicated (factory clones, proxy
//! templates, copy-pasted tokens), so corpus-scale recovery throughput is
//! dominated by how well the pipeline exploits that redundancy. This
//! experiment builds a synthetic corpus with an on-chain-like duplication
//! profile (~20× mean duplication, skewed so a few templates dominate),
//! runs it through the naive per-contract scheduler and the dedup-aware
//! function-grained sharded work-stealing scheduler at worker counts
//! {1, 2, 4, 8, 16} (best of several profiled runs per point), verifies
//! every run recovers identical signatures, and reports contracts/s,
//! per-point contract-latency tails (p50/p90/p99/max from the
//! scheduler's log-bucketed histogram) and steal/park counters, executor
//! fork-cost stats (CoW vs eager-clone forking), a compile/explore/infer
//! phase breakdown (with the inference phase further split into
//! index/match/refine sub-phases and the per-rule attribution reported
//! *exclusively* — shared index/dispatch time in its own bucket, so the
//! per-rule figures sum to at most the phase total), a single-worker
//! block-vs-instruction engine probe and a single-worker
//! tree-vs-per-rule inference probe (both double as CI gates: each
//! engine pair must recover identical signatures), cache hit rates and
//! latency percentiles at both function and contract granularity. The
//! machine-readable summary is written to `BENCH_throughput.json` in the
//! working directory.

use crate::accuracy::Scale;
use crate::report::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sigrec_core::exec::{ExecEngine, ForkMode};
use sigrec_core::{
    recover_batch, recover_batch_naive, BatchResult, InferEngine, SigRec, TaseConfig,
};
use sigrec_corpus::datasets;
use std::time::{Duration, Instant};

/// Worker counts swept by the scaling table.
const WORKER_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

/// The worker count whose run is reported as "the" dedup figure.
const REFERENCE_WORKERS: usize = 4;

/// Profiled runs per sweep point; each point reports its best run. A
/// full dedup pass is tens of milliseconds — well within scheduler
/// jitter on a shared box — so a single sample per worker count would
/// make the scaling curve mostly noise.
const SWEEP_REPS: usize = 3;

/// One worker count's best run in the scaling sweep: wall seconds plus
/// the scheduler telemetry that run produced — the per-contract latency
/// tail (from the batch's log-bucketed histogram) and the steal/park
/// counters aggregated from the per-worker scheduler counters.
struct SweepPoint {
    workers: usize,
    secs: f64,
    p50: Duration,
    p90: Duration,
    p99: Duration,
    max: Duration,
    steals: u64,
    steal_failures: u64,
    steal_backoffs: u64,
    contention: u64,
}

/// Expands `distinct` codes into a `total`-element corpus with a skewed
/// (harmonic) duplication profile: template `i` receives weight
/// `1 / (i + 1)`, mirroring the head-heavy clone distribution seen on
/// chain. Every template appears at least once and the result is
/// deterministically shuffled with `seed`.
pub fn duplicate_with_skew(distinct: &[Vec<u8>], total: usize, seed: u64) -> Vec<Vec<u8>> {
    assert!(!distinct.is_empty(), "need at least one distinct code");
    let total = total.max(distinct.len());
    let mut rng = StdRng::seed_from_u64(seed);

    // Cumulative harmonic weights for weighted template sampling.
    let mut cumulative = Vec::with_capacity(distinct.len());
    let mut sum = 0.0f64;
    for i in 0..distinct.len() {
        sum += 1.0 / (i + 1) as f64;
        cumulative.push(sum);
    }

    // One guaranteed copy of every template, then weighted fill.
    let mut codes: Vec<Vec<u8>> = distinct.to_vec();
    while codes.len() < total {
        let u = rng.gen::<f64>() * sum;
        let i = cumulative
            .partition_point(|&c| c < u)
            .min(distinct.len() - 1);
        codes.push(distinct[i].clone());
    }

    // Fisher–Yates so duplicates are interleaved, not clustered.
    for i in (1..codes.len()).rev() {
        let j = rng.gen_range(0usize..=i);
        codes.swap(i, j);
    }
    codes
}

/// Asserts that two batch results recover identical signatures for every
/// input contract, in input order.
fn assert_equivalent(naive: &BatchResult, dedup: &BatchResult) {
    assert_eq!(naive.items.len(), dedup.items.len(), "item count differs");
    for (a, b) in naive.items.iter().zip(&dedup.items) {
        assert_eq!(a.index, b.index, "item order differs");
        assert_eq!(
            a.functions.len(),
            b.functions.len(),
            "function count differs at {}",
            a.index
        );
        for (fa, fb) in a.functions.iter().zip(b.functions.iter()) {
            assert_eq!(fa.selector, fb.selector, "selector differs at {}", a.index);
            assert_eq!(fa.params, fb.params, "params differ at {}", a.index);
            assert_eq!(fa.language, fb.language, "language differs at {}", a.index);
        }
    }
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[((sorted.len() - 1) as f64 * q) as usize]
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// max/p99 of a sorted latency vector (1.0 when degenerate).
fn tail_ratio(sorted: &[Duration]) -> f64 {
    let p99 = percentile(sorted, 0.99).as_secs_f64();
    let max = sorted
        .last()
        .copied()
        .unwrap_or(Duration::ZERO)
        .as_secs_f64();
    if p99 <= 0.0 {
        1.0
    } else {
        max / p99
    }
}

/// The single-worker engine contrast: wall and TASE-attributed seconds
/// for the same corpus under each execution engine.
struct EngineProbe {
    block_secs: f64,
    instr_secs: f64,
    block_tase: f64,
    instr_tase: f64,
    block_compile: f64,
}

impl EngineProbe {
    /// Single-worker TASE throughput ratio, the headline figure for the
    /// block-compiled engine.
    fn tase_speedup(&self) -> f64 {
        self.instr_tase / self.block_tase.max(1e-9)
    }

    fn wall_speedup(&self) -> f64 {
        self.instr_secs / self.block_secs.max(1e-9)
    }
}

/// Runs the dedup corpus through both execution engines at one worker and
/// asserts they recover identical signatures — the bench doubles as a CI
/// gate on engine agreement (a mismatch panics, failing the run).
fn engine_probe(codes: &[Vec<u8>]) -> EngineProbe {
    // One cold run is a few milliseconds of executor time — well below
    // scheduler jitter — so each engine reports its best of several
    // interleaved cold runs (fresh recoverer per run, so the cache never
    // absorbs the TASE work being measured).
    const REPS: usize = 5;
    let run = |engine: ExecEngine| {
        let cfg = TaseConfig {
            exec_engine: engine,
            ..TaseConfig::default()
        };
        let rec = SigRec::with_config(cfg).with_exec_stats();
        let t = Instant::now();
        let result = recover_batch(&rec, codes, 1);
        let secs = t.elapsed().as_secs_f64();
        let profile = rec.exec_stats().expect("profiling enabled");
        (result, secs, profile)
    };
    let mut probe = EngineProbe {
        block_secs: f64::INFINITY,
        instr_secs: f64::INFINITY,
        block_tase: f64::INFINITY,
        instr_tase: f64::INFINITY,
        block_compile: f64::INFINITY,
    };
    let mut last_pair = None;
    for _ in 0..REPS {
        let (block, block_secs, block_prof) = run(ExecEngine::Block);
        let (instr, instr_secs, instr_prof) = run(ExecEngine::Instr);
        probe.block_secs = probe.block_secs.min(block_secs);
        probe.instr_secs = probe.instr_secs.min(instr_secs);
        probe.block_tase = probe.block_tase.min(block_prof.tase_time.as_secs_f64());
        probe.instr_tase = probe.instr_tase.min(instr_prof.tase_time.as_secs_f64());
        probe.block_compile = probe
            .block_compile
            .min(block_prof.compile_time.as_secs_f64());
        last_pair = Some((instr, block));
    }
    let (instr, block) = last_pair.expect("REPS > 0");
    assert_equivalent(&instr, &block);
    if std::env::var_os("SIGREC_PROBE_DEBUG").is_some() {
        let (_, _, bp) = run(ExecEngine::Block);
        eprintln!(
            "probe: steps={} paths={} forks={} fns={} tase={:?}",
            bp.exec.steps, bp.exec.paths, bp.exec.forks, bp.functions_explored, bp.tase_time
        );
    }
    probe
}

/// The single-worker inference-engine contrast: wall, TASE+infer, and
/// infer-phase seconds for the same corpus under the compiled tree
/// matcher and the per-rule reference.
struct InferProbe {
    tree_secs: f64,
    perrule_secs: f64,
    tree_taseinfer: f64,
    perrule_taseinfer: f64,
    tree_infer: f64,
    perrule_infer: f64,
}

impl InferProbe {
    /// Single-worker TASE+infer throughput ratio — the ISSUE gate for the
    /// compiled tree matcher (per-rule time over tree time).
    fn taseinfer_speedup(&self) -> f64 {
        self.perrule_taseinfer / self.tree_taseinfer.max(1e-9)
    }

    /// Inference-phase-only throughput ratio.
    fn infer_speedup(&self) -> f64 {
        self.perrule_infer / self.tree_infer.max(1e-9)
    }
}

/// Runs the dedup corpus through both inference engines at one worker and
/// asserts they recover identical signatures — like [`engine_probe`], the
/// bench doubles as a CI gate on inference-engine agreement.
fn infer_probe(codes: &[Vec<u8>]) -> InferProbe {
    // Interleaved best-of-REPS cold runs, same rationale as
    // `engine_probe`: the inference phase is milliseconds, well below
    // scheduler jitter, so the minimum of paired runs is the honest
    // figure.
    const REPS: usize = 5;
    let run = |engine: InferEngine| {
        let cfg = TaseConfig {
            infer_engine: engine,
            ..TaseConfig::default()
        };
        let rec = SigRec::with_config(cfg).with_exec_stats();
        let t = Instant::now();
        let result = recover_batch(&rec, codes, 1);
        let secs = t.elapsed().as_secs_f64();
        let profile = rec.exec_stats().expect("profiling enabled");
        (result, secs, profile)
    };
    let mut probe = InferProbe {
        tree_secs: f64::INFINITY,
        perrule_secs: f64::INFINITY,
        tree_taseinfer: f64::INFINITY,
        perrule_taseinfer: f64::INFINITY,
        tree_infer: f64::INFINITY,
        perrule_infer: f64::INFINITY,
    };
    let mut last_pair = None;
    for _ in 0..REPS {
        let (tree, tree_secs, tree_prof) = run(InferEngine::Tree);
        let (per, per_secs, per_prof) = run(InferEngine::PerRule);
        let tree_infer = tree_prof.infer_time.as_secs_f64();
        let per_infer = per_prof.infer_time.as_secs_f64();
        probe.tree_secs = probe.tree_secs.min(tree_secs);
        probe.perrule_secs = probe.perrule_secs.min(per_secs);
        probe.tree_taseinfer = probe
            .tree_taseinfer
            .min(tree_prof.tase_time.as_secs_f64() + tree_infer);
        probe.perrule_taseinfer = probe
            .perrule_taseinfer
            .min(per_prof.tase_time.as_secs_f64() + per_infer);
        probe.tree_infer = probe.tree_infer.min(tree_infer);
        probe.perrule_infer = probe.perrule_infer.min(per_infer);
        last_pair = Some((per, tree));
    }
    let (per, tree) = last_pair.expect("REPS > 0");
    assert_equivalent(&per, &tree);
    probe
}

/// Re-explores every distinct template cold under `mode` with profiling
/// on, returning (forks, units copied by those forks).
fn fork_cost_probe(distinct: &[Vec<u8>], mode: ForkMode) -> (u64, u64) {
    let config = TaseConfig {
        fork_mode: mode,
        ..TaseConfig::default()
    };
    let rec = SigRec::with_config(config).with_exec_stats();
    for code in distinct {
        let _ = rec.recover_cold(code);
    }
    let stats = rec.exec_stats().expect("profiling enabled");
    (stats.exec.forks, stats.exec.fork_units_copied)
}

/// The throughput experiment: naive vs dedup-aware batch recovery over a
/// duplicated corpus, swept over worker counts. Returns the text report
/// and writes `BENCH_throughput.json`.
pub fn throughput(scale: &Scale) -> String {
    // The throughput corpus is ~8× the accuracy corpora (duplication makes
    // the extra volume nearly free for the dedup path): the default scale
    // yields 4 800 contracts over 240 distinct templates (20× duplication).
    let total = scale.contracts.saturating_mul(8).max(40);
    let distinct_n = (total / 20).max(10);
    let base = datasets::dataset3(distinct_n, scale.seed + 40);
    let distinct: Vec<Vec<u8>> = base.contracts.iter().map(|c| c.code.clone()).collect();
    let codes = duplicate_with_skew(&distinct, total, scale.seed + 41);

    // Warm-up: touch every distinct template once so the timed runs don't
    // charge first-run page faults and allocator growth to one worker count.
    let _ = recover_batch(&SigRec::new(), &distinct, REFERENCE_WORKERS);

    // The naive baseline runs at the machine's real parallelism: per-function
    // latencies are wall-clock, and oversubscribing a small box would charge
    // scheduler preemption to individual functions. Snapped down to a sweep
    // point so the dedup latency comparison below has a matching run.
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(REFERENCE_WORKERS);
    let machine_workers = WORKER_SWEEP
        .iter()
        .copied()
        .filter(|&w| w <= available)
        .max()
        .unwrap_or(1);
    let naive_rec = SigRec::new();
    let t0 = Instant::now();
    let naive = recover_batch_naive(&naive_rec, &codes, machine_workers);
    let naive_secs = t0.elapsed().as_secs_f64();

    // Worker-scaling sweep: a fresh profiled SigRec per run, every run
    // checked against the naive baseline signatures, best of SWEEP_REPS
    // kept per point along with that run's latency tail and steal/park
    // counters.
    let mut sweep: Vec<SweepPoint> = Vec::new();
    let mut reference: Option<(BatchResult, SigRec, f64)> = None;
    let mut latency_reference: Option<Vec<Duration>> = None;
    for &workers in &WORKER_SWEEP {
        let mut best: Option<(f64, BatchResult, SigRec)> = None;
        for _ in 0..SWEEP_REPS {
            let rec = SigRec::new().with_exec_stats();
            let t = Instant::now();
            let result = recover_batch(&rec, &codes, workers);
            let secs = t.elapsed().as_secs_f64();
            assert_equivalent(&naive, &result);
            if best.as_ref().is_none_or(|(b, _, _)| secs < *b) {
                best = Some((secs, result, rec));
            }
        }
        let (secs, result, rec) = best.expect("SWEEP_REPS > 0");
        let profile = rec.exec_stats().expect("profiling enabled");
        let hist = &result.contract_latency_hist;
        sweep.push(SweepPoint {
            workers,
            secs,
            p50: hist.p50(),
            p90: hist.p90(),
            p99: hist.p99(),
            max: hist.max(),
            steals: profile.exec.steals,
            steal_failures: profile.exec.steal_failures,
            steal_backoffs: profile.exec.steal_backoffs,
            contention: profile.exec.worklist_contention,
        });
        if workers == machine_workers {
            latency_reference = Some(result.contract_latencies.clone());
        }
        if workers == REFERENCE_WORKERS {
            reference = Some((result, rec, secs));
        }
    }
    let (dedup, dedup_rec, dedup_secs) = reference.expect("REFERENCE_WORKERS is in the sweep");

    let functions = dedup.function_count();
    let cache = dedup_rec.cache_stats();
    let profile = dedup_rec.exec_stats().expect("profiling enabled");
    let speedup = naive_secs / dedup_secs.max(1e-9);

    // Engine contrast: the same corpus, single worker, block-compiled vs
    // per-instruction execution (also the engine-agreement CI gate).
    let probe = engine_probe(&codes);

    // Inference contrast: the same corpus, single worker, compiled tree
    // matcher vs per-rule reference (also an engine-agreement CI gate).
    let inf_probe = infer_probe(&codes);

    // Fork-cost contrast: same distinct templates, CoW vs eager cloning.
    let (cow_forks, cow_units) = fork_cost_probe(&distinct, ForkMode::CopyOnWrite);
    let (eager_forks, eager_units) = fork_cost_probe(&distinct, ForkMode::EagerClone);
    let cow_per_fork = cow_units as f64 / (cow_forks.max(1)) as f64;
    let eager_per_fork = eager_units as f64 / (eager_forks.max(1)) as f64;

    // True cold per-function recovery latencies, from the naive run (the
    // dedup run only measures each distinct function once).
    let mut lat: Vec<Duration> = naive
        .items
        .iter()
        .flat_map(|i| i.functions.iter().map(|f| f.elapsed))
        .collect();
    lat.sort_unstable();
    let mean = if lat.is_empty() {
        Duration::ZERO
    } else {
        lat.iter().sum::<Duration>() / lat.len() as u32
    };

    // Whole-contract wall-clock latency, plan → last function done.
    // Naive gives per-input-contract figures; the dedup run gives
    // per-distinct figures under function-grained scheduling. Both sides
    // are taken at the machine's real parallelism (the naive run above
    // and the matching sweep point here): comparing an oversubscribed
    // dedup run against a non-oversubscribed naive baseline would charge
    // kernel time-slicing — every contract in flight when its worker is
    // descheduled absorbs a preemption quantum — to the scheduler. The
    // sweep table still reports every worker count's tail unfiltered.
    let mut naive_clat = naive.contract_latencies.clone();
    naive_clat.sort_unstable();
    let mut dedup_clat = latency_reference.expect("machine_workers is in the sweep");
    dedup_clat.sort_unstable();

    // Per-rule *exclusive* inference time, heaviest first; the shared
    // index/dispatch bucket is reported separately so the figures sum to
    // the inference phase.
    let mut rule_time = profile.rule_time.clone();
    rule_time.sort_by_key(|r| std::cmp::Reverse(r.1));

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"corpus\": {{ \"contracts\": {}, \"distinct_contracts\": {}, \
         \"duplication_factor\": {:.2}, \"functions\": {}, \"workers\": {} }},\n",
        codes.len(),
        dedup.dedup.distinct_contracts,
        codes.len() as f64 / dedup.dedup.distinct_contracts.max(1) as f64,
        functions,
        REFERENCE_WORKERS,
    ));
    json.push_str(&format!(
        "  \"naive\": {{ \"seconds\": {:.4}, \"contracts_per_sec\": {:.2}, \
         \"functions_per_sec\": {:.2} }},\n",
        naive_secs,
        codes.len() as f64 / naive_secs.max(1e-9),
        functions as f64 / naive_secs.max(1e-9),
    ));
    json.push_str(&format!(
        "  \"dedup\": {{ \"seconds\": {:.4}, \"contracts_per_sec\": {:.2}, \
         \"functions_per_sec\": {:.2}, \"speedup\": {:.2}, \"dedup_rate\": {:.4}, \
         \"contract_cache_hit_rate\": {:.4}, \"function_cache_hit_rate\": {:.4} }},\n",
        dedup_secs,
        codes.len() as f64 / dedup_secs.max(1e-9),
        functions as f64 / dedup_secs.max(1e-9),
        speedup,
        dedup.dedup.dedup_rate(),
        cache.contract_hit_rate(),
        cache.function_hit_rate(),
    ));
    let machine_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    json.push_str(&format!(
        "  \"machine\": {{ \"available_parallelism\": {machine_parallelism} }},\n",
    ));
    json.push_str("  \"scaling\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"workers\": {}, \"oversubscribed\": {}, \"seconds\": {:.4}, \
             \"contracts_per_sec\": {:.2}, \"speedup_vs_naive\": {:.2}, \
             \"latency\": {{ \"p50_us\": {:.1}, \"p90_us\": {:.1}, \"p99_us\": {:.1}, \
             \"max_us\": {:.1} }}, \
             \"steals\": {}, \"steal_failures\": {}, \"steal_backoffs\": {}, \
             \"contention\": {} }}{}\n",
            p.workers,
            // Honest scaling: points beyond the machine's real
            // parallelism only measure kernel time-slicing, not the
            // scheduler — flag them so readers (and CI) discount them.
            p.workers > machine_parallelism,
            p.secs,
            codes.len() as f64 / p.secs.max(1e-9),
            naive_secs / p.secs.max(1e-9),
            micros(p.p50),
            micros(p.p90),
            micros(p.p99),
            micros(p.max),
            p.steals,
            p.steal_failures,
            p.steal_backoffs,
            p.contention,
            if i + 1 < sweep.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"exec\": {{ \"steps\": {}, \"paths\": {}, \"forks\": {}, \
         \"fork_units_copied\": {}, \"worklist_peak\": {}, \
         \"worklist_contention\": {}, \"steals\": {}, \"steal_failures\": {}, \
         \"functions_explored\": {}, \
         \"tase_ms\": {:.2}, \"infer_ms\": {:.2} }},\n",
        profile.exec.steps,
        profile.exec.paths,
        profile.exec.forks,
        profile.exec.fork_units_copied,
        profile.exec.worklist_peak,
        profile.exec.worklist_contention,
        profile.exec.steals,
        profile.exec.steal_failures,
        profile.functions_explored,
        profile.tase_time.as_secs_f64() * 1e3,
        profile.infer_time.as_secs_f64() * 1e3,
    ));
    json.push_str(&format!(
        "  \"phases\": {{ \"compile_ms\": {:.2}, \"compile_cold_ms\": {:.2}, \
         \"compile_store_ms\": {:.2}, \"compile_memo_ms\": {:.2}, \
         \"lazy_blocks_skipped\": {}, \"explore_ms\": {:.2}, \
         \"infer_ms\": {:.2}, \"infer_index_ms\": {:.2}, \
         \"infer_match_ms\": {:.2}, \"infer_refine_ms\": {:.2} }},\n",
        profile.compile_time.as_secs_f64() * 1e3,
        profile.compile_cold_time.as_secs_f64() * 1e3,
        profile.compile_store_time.as_secs_f64() * 1e3,
        profile.compile_memo_time.as_secs_f64() * 1e3,
        profile.lazy_blocks_skipped,
        profile.tase_time.as_secs_f64() * 1e3,
        profile.infer_time.as_secs_f64() * 1e3,
        profile.infer_index_time.as_secs_f64() * 1e3,
        profile.infer_match_time.as_secs_f64() * 1e3,
        profile.infer_refine_time.as_secs_f64() * 1e3,
    ));
    json.push_str(&format!(
        "  \"block_vs_instr\": {{ \"block_seconds\": {:.4}, \"instr_seconds\": {:.4}, \
         \"wall_speedup\": {:.2}, \"block_tase_ms\": {:.2}, \"instr_tase_ms\": {:.2}, \
         \"tase_speedup\": {:.2}, \"block_compile_ms\": {:.2} }},\n",
        probe.block_secs,
        probe.instr_secs,
        probe.wall_speedup(),
        probe.block_tase * 1e3,
        probe.instr_tase * 1e3,
        probe.tase_speedup(),
        probe.block_compile * 1e3,
    ));
    json.push_str(&format!(
        "  \"fork_cost\": {{ \"cow_units_per_fork\": {:.2}, \
         \"eager_units_per_fork\": {:.2}, \"reduction\": {:.2} }},\n",
        cow_per_fork,
        eager_per_fork,
        eager_per_fork / cow_per_fork.max(1e-9),
    ));
    json.push_str(&format!(
        "  \"tree_vs_perrule\": {{ \"tree_seconds\": {:.4}, \
         \"perrule_seconds\": {:.4}, \"tree_taseinfer_ms\": {:.2}, \
         \"perrule_taseinfer_ms\": {:.2}, \"taseinfer_speedup\": {:.2}, \
         \"tree_infer_ms\": {:.2}, \"perrule_infer_ms\": {:.2}, \
         \"infer_speedup\": {:.2} }},\n",
        inf_probe.tree_secs,
        inf_probe.perrule_secs,
        inf_probe.tree_taseinfer * 1e3,
        inf_probe.perrule_taseinfer * 1e3,
        inf_probe.taseinfer_speedup(),
        inf_probe.tree_infer * 1e3,
        inf_probe.perrule_infer * 1e3,
        inf_probe.infer_speedup(),
    ));
    json.push_str("  \"rule_time_top_ms\": [ ");
    for (i, (rule, time)) in rule_time.iter().take(5).enumerate() {
        json.push_str(&format!(
            "{}{{ \"rule\": \"{}\", \"exclusive_ms\": {:.2} }}",
            if i > 0 { ", " } else { "" },
            rule,
            time.as_secs_f64() * 1e3,
        ));
    }
    json.push_str(" ],\n");
    json.push_str(&format!(
        "  \"rule_time_shared_ms\": {:.2},\n",
        profile.infer_shared_time.as_secs_f64() * 1e3,
    ));
    json.push_str(&format!(
        "  \"latency\": {{ \"mean_us\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
         \"max_us\": {:.1}, \"max_over_p99\": {:.2} }},\n",
        micros(mean),
        micros(percentile(&lat, 0.50)),
        micros(percentile(&lat, 0.99)),
        micros(*lat.last().unwrap_or(&Duration::ZERO)),
        tail_ratio(&lat),
    ));
    let naive_p99 = percentile(&naive_clat, 0.99);
    let dedup_p99 = percentile(&dedup_clat, 0.99);
    json.push_str(&format!(
        "  \"contract_latency\": {{ \"naive_p99_us\": {:.1}, \"naive_max_us\": {:.1}, \
         \"naive_max_over_p99\": {:.2}, \"dedup_p99_us\": {:.1}, \"dedup_max_us\": {:.1}, \
         \"dedup_max_over_p99\": {:.2}, \"dedup_p99_over_naive_p99\": {:.2}, \
         \"heavy_admissions\": {} }}\n",
        micros(naive_p99),
        micros(*naive_clat.last().unwrap_or(&Duration::ZERO)),
        tail_ratio(&naive_clat),
        micros(dedup_p99),
        micros(*dedup_clat.last().unwrap_or(&Duration::ZERO)),
        tail_ratio(&dedup_clat),
        dedup_p99.as_secs_f64() / naive_p99.as_secs_f64().max(1e-9),
        dedup.heavy_admissions,
    ));
    json.push_str("}\n");
    if let Err(e) = std::fs::write("BENCH_throughput.json", &json) {
        eprintln!("warning: could not write BENCH_throughput.json: {e}");
    }

    let mut t = TextTable::new(&["metric", "naive", "dedup"]);
    t.row(&[
        "contracts".into(),
        codes.len().to_string(),
        codes.len().to_string(),
    ]);
    t.row(&[
        "distinct".into(),
        codes.len().to_string(),
        dedup.dedup.distinct_contracts.to_string(),
    ]);
    t.row(&[
        "seconds".into(),
        format!("{naive_secs:.3}"),
        format!("{dedup_secs:.3}"),
    ]);
    t.row(&[
        "contracts/s".into(),
        format!("{:.1}", codes.len() as f64 / naive_secs.max(1e-9)),
        format!("{:.1}", codes.len() as f64 / dedup_secs.max(1e-9)),
    ]);
    t.row(&[
        "functions/s".into(),
        format!("{:.1}", functions as f64 / naive_secs.max(1e-9)),
        format!("{:.1}", functions as f64 / dedup_secs.max(1e-9)),
    ]);
    t.row(&["speedup".into(), "1.0×".into(), format!("{speedup:.1}×")]);
    for p in &sweep {
        t.row(&[
            format!("contracts/s @{}w", p.workers),
            "—".into(),
            format!("{:.1}", codes.len() as f64 / p.secs.max(1e-9)),
        ]);
        t.row(&[
            format!("p99/max contract @{}w", p.workers),
            "—".into(),
            format!("{:.0}µs / {:.0}µs", micros(p.p99), micros(p.max)),
        ]);
        t.row(&[
            format!("steals/parks @{}w", p.workers),
            "—".into(),
            format!("{} / {}", p.steals, p.contention),
        ]);
    }
    t.row(&[
        "dedup rate".into(),
        "—".into(),
        crate::report::pct(dedup.dedup.dedup_rate()),
    ]);
    t.row(&[
        "fn-cache hit rate".into(),
        "—".into(),
        crate::report::pct(cache.function_hit_rate()),
    ]);
    t.row(&[
        "fork units/fork".into(),
        format!("{eager_per_fork:.1} (eager)"),
        format!("{cow_per_fork:.1} (CoW)"),
    ]);
    t.row(&[
        "engine TASE speedup".into(),
        "1.0× (instr)".into(),
        format!("{:.1}× (block)", probe.tase_speedup()),
    ]);
    t.row(&[
        "infer TASE+infer speedup".into(),
        "1.0× (per-rule)".into(),
        format!("{:.1}× (tree)", inf_probe.taseinfer_speedup()),
    ]);
    t.row(&[
        "infer phase speedup".into(),
        "1.0× (per-rule)".into(),
        format!("{:.1}× (tree)", inf_probe.infer_speedup()),
    ]);
    t.row(&[
        "scheduler parks (ref)".into(),
        "—".into(),
        profile.exec.worklist_contention.to_string(),
    ]);
    t.row(&[
        "steals / failed probes (ref)".into(),
        "—".into(),
        format!("{} / {}", profile.exec.steals, profile.exec.steal_failures),
    ]);
    t.row(&[
        "p99 fn latency".into(),
        format!("{:?}", percentile(&lat, 0.99)),
        "—".into(),
    ]);
    t.row(&[
        "max/p99 fn".into(),
        format!("{:.1}×", tail_ratio(&lat)),
        "—".into(),
    ]);
    t.row(&[
        "max/p99 contract".into(),
        format!("{:.1}×", tail_ratio(&naive_clat)),
        format!("{:.1}×", tail_ratio(&dedup_clat)),
    ]);
    format!(
        "Throughput — dedup-aware function-grained batch vs naive over a \
         {:.0}×-duplicated corpus (signatures verified identical at every \
         worker count; BENCH_throughput.json written)\n{}",
        codes.len() as f64 / dedup.dedup.distinct_contracts.max(1) as f64,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_duplication_covers_every_template_exactly_total() {
        let distinct: Vec<Vec<u8>> = (0u8..7).map(|i| vec![i; 4]).collect();
        let codes = duplicate_with_skew(&distinct, 100, 9);
        assert_eq!(codes.len(), 100);
        for d in &distinct {
            assert!(codes.contains(d), "template missing from corpus");
        }
        // The head template dominates the tail one (harmonic skew).
        let count = |d: &Vec<u8>| codes.iter().filter(|c| *c == d).count();
        assert!(count(&distinct[0]) > count(&distinct[6]));
    }

    #[test]
    fn duplication_is_deterministic_in_the_seed() {
        let distinct: Vec<Vec<u8>> = (0u8..3).map(|i| vec![i; 2]).collect();
        assert_eq!(
            duplicate_with_skew(&distinct, 30, 5),
            duplicate_with_skew(&distinct, 30, 5)
        );
        assert_ne!(
            duplicate_with_skew(&distinct, 30, 5),
            duplicate_with_skew(&distinct, 30, 6)
        );
    }

    #[test]
    fn percentile_picks_from_sorted() {
        let lat: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert_eq!(percentile(&lat, 0.0), Duration::from_micros(1));
        assert_eq!(percentile(&lat, 1.0), Duration::from_micros(100));
        assert!(percentile(&lat, 0.5) <= percentile(&lat, 0.99));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }

    #[test]
    fn tail_ratio_degenerate_is_one() {
        assert_eq!(tail_ratio(&[]), 1.0);
        let lat = vec![Duration::ZERO, Duration::ZERO];
        assert_eq!(tail_ratio(&lat), 1.0);
    }
}
