//! Corpus-scale throughput benchmark for the dedup-aware batch layer.
//!
//! Deployed bytecode is massively duplicated (factory clones, proxy
//! templates, copy-pasted tokens), so corpus-scale recovery throughput is
//! dominated by how well the pipeline exploits that redundancy. This
//! experiment builds a synthetic corpus with an on-chain-like duplication
//! profile (~20× mean duplication, skewed so a few templates dominate),
//! runs it through the naive per-contract scheduler and the dedup-aware
//! scheduler, verifies both recover identical signatures, and reports
//! contracts/s, functions/s, cache hit rates and per-function latency
//! percentiles. The machine-readable summary is written to
//! `BENCH_throughput.json` in the working directory.

use crate::accuracy::Scale;
use crate::report::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sigrec_core::{recover_batch, recover_batch_naive, BatchResult, SigRec};
use sigrec_corpus::datasets;
use std::time::{Duration, Instant};

/// Expands `distinct` codes into a `total`-element corpus with a skewed
/// (harmonic) duplication profile: template `i` receives weight
/// `1 / (i + 1)`, mirroring the head-heavy clone distribution seen on
/// chain. Every template appears at least once and the result is
/// deterministically shuffled with `seed`.
pub fn duplicate_with_skew(distinct: &[Vec<u8>], total: usize, seed: u64) -> Vec<Vec<u8>> {
    assert!(!distinct.is_empty(), "need at least one distinct code");
    let total = total.max(distinct.len());
    let mut rng = StdRng::seed_from_u64(seed);

    // Cumulative harmonic weights for weighted template sampling.
    let mut cumulative = Vec::with_capacity(distinct.len());
    let mut sum = 0.0f64;
    for i in 0..distinct.len() {
        sum += 1.0 / (i + 1) as f64;
        cumulative.push(sum);
    }

    // One guaranteed copy of every template, then weighted fill.
    let mut codes: Vec<Vec<u8>> = distinct.to_vec();
    while codes.len() < total {
        let u = rng.gen::<f64>() * sum;
        let i = cumulative
            .partition_point(|&c| c < u)
            .min(distinct.len() - 1);
        codes.push(distinct[i].clone());
    }

    // Fisher–Yates so duplicates are interleaved, not clustered.
    for i in (1..codes.len()).rev() {
        let j = rng.gen_range(0usize..=i);
        codes.swap(i, j);
    }
    codes
}

/// Asserts that two batch results recover identical signatures for every
/// input contract, in input order.
fn assert_equivalent(naive: &BatchResult, dedup: &BatchResult) {
    assert_eq!(naive.items.len(), dedup.items.len(), "item count differs");
    for (a, b) in naive.items.iter().zip(&dedup.items) {
        assert_eq!(a.index, b.index, "item order differs");
        assert_eq!(
            a.functions.len(),
            b.functions.len(),
            "function count differs at {}",
            a.index
        );
        for (fa, fb) in a.functions.iter().zip(&b.functions) {
            assert_eq!(fa.selector, fb.selector, "selector differs at {}", a.index);
            assert_eq!(fa.params, fb.params, "params differ at {}", a.index);
            assert_eq!(fa.language, fb.language, "language differs at {}", a.index);
        }
    }
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[((sorted.len() - 1) as f64 * q) as usize]
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// The throughput experiment: naive vs dedup-aware batch recovery over a
/// duplicated corpus. Returns the text report and writes
/// `BENCH_throughput.json`.
pub fn throughput(scale: &Scale) -> String {
    // The throughput corpus is ~8× the accuracy corpora (duplication makes
    // the extra volume nearly free for the dedup path): the default scale
    // yields 4 800 contracts over 240 distinct templates (20× duplication).
    let total = scale.contracts.saturating_mul(8).max(40);
    let distinct_n = (total / 20).max(10);
    let base = datasets::dataset3(distinct_n, scale.seed + 40);
    let distinct: Vec<Vec<u8>> = base.contracts.iter().map(|c| c.code.clone()).collect();
    let codes = duplicate_with_skew(&distinct, total, scale.seed + 41);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let naive_rec = SigRec::new();
    let t0 = Instant::now();
    let naive = recover_batch_naive(&naive_rec, &codes, workers);
    let naive_secs = t0.elapsed().as_secs_f64();

    let dedup_rec = SigRec::new();
    let t1 = Instant::now();
    let dedup = recover_batch(&dedup_rec, &codes, workers);
    let dedup_secs = t1.elapsed().as_secs_f64();

    assert_equivalent(&naive, &dedup);

    let functions = dedup.function_count();
    let cache = dedup_rec.cache_stats();
    let speedup = naive_secs / dedup_secs.max(1e-9);

    // True cold per-function recovery latencies, from the naive run (the
    // dedup run only measures each distinct function once).
    let mut lat: Vec<Duration> = naive
        .items
        .iter()
        .flat_map(|i| i.functions.iter().map(|f| f.elapsed))
        .collect();
    lat.sort_unstable();
    let mean = if lat.is_empty() {
        Duration::ZERO
    } else {
        lat.iter().sum::<Duration>() / lat.len() as u32
    };

    let json = format!(
        concat!(
            "{{\n",
            "  \"corpus\": {{ \"contracts\": {}, \"distinct_contracts\": {}, ",
            "\"duplication_factor\": {:.2}, \"functions\": {}, \"workers\": {} }},\n",
            "  \"naive\": {{ \"seconds\": {:.4}, \"contracts_per_sec\": {:.2}, ",
            "\"functions_per_sec\": {:.2} }},\n",
            "  \"dedup\": {{ \"seconds\": {:.4}, \"contracts_per_sec\": {:.2}, ",
            "\"functions_per_sec\": {:.2}, \"speedup\": {:.2}, \"dedup_rate\": {:.4}, ",
            "\"contract_cache_hit_rate\": {:.4}, \"function_cache_hit_rate\": {:.4} }},\n",
            "  \"latency\": {{ \"mean_us\": {:.1}, \"p50_us\": {:.1}, ",
            "\"p99_us\": {:.1}, \"max_us\": {:.1} }}\n",
            "}}\n",
        ),
        codes.len(),
        dedup.dedup.distinct_contracts,
        codes.len() as f64 / dedup.dedup.distinct_contracts.max(1) as f64,
        functions,
        workers,
        naive_secs,
        codes.len() as f64 / naive_secs.max(1e-9),
        functions as f64 / naive_secs.max(1e-9),
        dedup_secs,
        codes.len() as f64 / dedup_secs.max(1e-9),
        functions as f64 / dedup_secs.max(1e-9),
        speedup,
        dedup.dedup.dedup_rate(),
        cache.contract_hit_rate(),
        cache.function_hit_rate(),
        micros(mean),
        micros(percentile(&lat, 0.50)),
        micros(percentile(&lat, 0.99)),
        micros(*lat.last().unwrap_or(&Duration::ZERO)),
    );
    if let Err(e) = std::fs::write("BENCH_throughput.json", &json) {
        eprintln!("warning: could not write BENCH_throughput.json: {e}");
    }

    let mut t = TextTable::new(&["metric", "naive", "dedup"]);
    t.row(&[
        "contracts".into(),
        codes.len().to_string(),
        codes.len().to_string(),
    ]);
    t.row(&[
        "distinct".into(),
        codes.len().to_string(),
        dedup.dedup.distinct_contracts.to_string(),
    ]);
    t.row(&[
        "seconds".into(),
        format!("{naive_secs:.3}"),
        format!("{dedup_secs:.3}"),
    ]);
    t.row(&[
        "contracts/s".into(),
        format!("{:.1}", codes.len() as f64 / naive_secs.max(1e-9)),
        format!("{:.1}", codes.len() as f64 / dedup_secs.max(1e-9)),
    ]);
    t.row(&[
        "functions/s".into(),
        format!("{:.1}", functions as f64 / naive_secs.max(1e-9)),
        format!("{:.1}", functions as f64 / dedup_secs.max(1e-9)),
    ]);
    t.row(&["speedup".into(), "1.0×".into(), format!("{speedup:.1}×")]);
    t.row(&[
        "dedup rate".into(),
        "—".into(),
        crate::report::pct(dedup.dedup.dedup_rate()),
    ]);
    t.row(&[
        "fn-cache hit rate".into(),
        "—".into(),
        crate::report::pct(cache.function_hit_rate()),
    ]);
    t.row(&[
        "p50 latency".into(),
        format!("{:?}", percentile(&lat, 0.50)),
        "—".into(),
    ]);
    t.row(&[
        "p99 latency".into(),
        format!("{:?}", percentile(&lat, 0.99)),
        "—".into(),
    ]);
    format!(
        "Throughput — dedup-aware batch vs naive over a {:.0}×-duplicated corpus \
         (signatures verified identical; BENCH_throughput.json written)\n{}",
        codes.len() as f64 / dedup.dedup.distinct_contracts.max(1) as f64,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_duplication_covers_every_template_exactly_total() {
        let distinct: Vec<Vec<u8>> = (0u8..7).map(|i| vec![i; 4]).collect();
        let codes = duplicate_with_skew(&distinct, 100, 9);
        assert_eq!(codes.len(), 100);
        for d in &distinct {
            assert!(codes.contains(d), "template missing from corpus");
        }
        // The head template dominates the tail one (harmonic skew).
        let count = |d: &Vec<u8>| codes.iter().filter(|c| *c == d).count();
        assert!(count(&distinct[0]) > count(&distinct[6]));
    }

    #[test]
    fn duplication_is_deterministic_in_the_seed() {
        let distinct: Vec<Vec<u8>> = (0u8..3).map(|i| vec![i; 2]).collect();
        assert_eq!(
            duplicate_with_skew(&distinct, 30, 5),
            duplicate_with_skew(&distinct, 30, 5)
        );
        assert_ne!(
            duplicate_with_skew(&distinct, 30, 5),
            duplicate_with_skew(&distinct, 30, 6)
        );
    }

    #[test]
    fn percentile_picks_from_sorted() {
        let lat: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert_eq!(percentile(&lat, 0.0), Duration::from_micros(1));
        assert_eq!(percentile(&lat, 1.0), Duration::from_micros(100));
        assert!(percentile(&lat, 0.5) <= percentile(&lat, 0.99));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }
}
