//! Efficiency experiments: Fig. 17 (per-function recovery time) and
//! Fig. 18 (time vs array dimension).

use crate::accuracy::Scale;
use crate::report::TextTable;
use sigrec_abi::{AbiType, FunctionSignature};
use sigrec_core::SigRec;
use sigrec_corpus::{datasets, evaluate};
use sigrec_solc::{compile_single, CompilerConfig, FunctionSpec, Visibility};
use std::time::Duration;

/// Fig. 17: the distribution of per-function recovery time (paper: mean
/// 0.074 s on their corpus; 99.7 % within 1 s; the *shape* — a tight bulk
/// with a thin slow tail — is the reproducible claim).
pub fn fig17(scale: &Scale) -> String {
    let corpus = datasets::dataset3(scale.contracts, scale.seed + 20);
    let eval = evaluate(&SigRec::new(), &corpus);
    let mut times: Vec<Duration> = eval.outcomes.iter().map(|o| o.elapsed).collect();
    times.sort_unstable();
    let total = times.len().max(1);
    let mean: Duration = times.iter().sum::<Duration>() / total as u32;
    let pick = |q: f64| times[((total - 1) as f64 * q) as usize];
    let mut t = TextTable::new(&["statistic", "value"]);
    t.row(&["functions".into(), total.to_string()]);
    t.row(&["mean".into(), format!("{:?}", mean)]);
    t.row(&["p50".into(), format!("{:?}", pick(0.50))]);
    t.row(&["p90".into(), format!("{:?}", pick(0.90))]);
    t.row(&["p99".into(), format!("{:?}", pick(0.99))]);
    t.row(&[
        "max".into(),
        format!("{:?}", *times.last().unwrap_or(&Duration::ZERO)),
    ]);
    let within = |d: Duration| times.iter().filter(|&&x| x <= d).count() as f64 / total as f64;
    t.row(&[
        "within 10×mean".into(),
        crate::report::pct(within(mean * 10)),
    ]);
    format!(
        "Fig. 17 — per-function recovery time (paper: mean 0.074s, 99.7% ≤ 1s on 47M functions)\n{}",
        t.render()
    )
}

/// One data point of Fig. 18.
#[derive(Clone, Copy, Debug)]
pub struct DimensionPoint {
    /// Array dimension.
    pub dimension: usize,
    /// Mean recovery time for a function taking one such array.
    pub time: Duration,
}

/// Measures recovery time for a `uint256` nested array of each dimension
/// in `1..=max_dim` (paper: time grows linearly with the dimension).
pub fn dimension_series(max_dim: usize, repeats: usize) -> Vec<DimensionPoint> {
    let sigrec = SigRec::new();
    (1..=max_dim)
        .map(|d| {
            let mut ty = AbiType::Uint(256);
            for _ in 0..d {
                ty = AbiType::DynArray(Box::new(ty));
            }
            let sig = FunctionSignature::from_declaration("probe", vec![ty]);
            let contract = compile_single(
                FunctionSpec::new(sig, Visibility::External),
                &CompilerConfig::default(),
            );
            // Warm up once, then measure.
            let _ = sigrec.recover(&contract.code);
            let start = std::time::Instant::now();
            for _ in 0..repeats.max(1) {
                let r = sigrec.recover(&contract.code);
                assert_eq!(r.len(), 1);
            }
            DimensionPoint {
                dimension: d,
                time: start.elapsed() / repeats.max(1) as u32,
            }
        })
        .collect()
}

/// Fig. 18: time vs array dimension, with a crude linearity check.
pub fn fig18() -> String {
    let series = dimension_series(20, 20);
    let mut t = TextTable::new(&["dimension", "time"]);
    for p in &series {
        t.row(&[p.dimension.to_string(), format!("{:?}", p.time)]);
    }
    // Shape check: time(20) / time(5) should be roughly 4× for linear
    // growth (allowing generous noise).
    let t5 = series[4].time.as_nanos().max(1) as f64;
    let t20 = series[19].time.as_nanos() as f64;
    let ratio = t20 / t5;
    format!(
        "Fig. 18 — recovery time vs array dimension (paper: linear growth)\n{}\nt(20)/t(5) = {:.1} (≈4 for linear)\n",
        t.render(),
        ratio
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_series_is_monotone_ish() {
        let s = dimension_series(6, 3);
        assert_eq!(s.len(), 6);
        // Deep arrays must cost more than shallow ones (loose check).
        assert!(s[5].time >= s[0].time / 2, "{:?}", s);
    }

    #[test]
    fn fig17_renders() {
        let out = fig17(&Scale {
            contracts: 20,
            per_version: 2,
            seed: 3,
        });
        assert!(out.contains("mean"));
        assert!(out.contains("p99"));
    }
}
