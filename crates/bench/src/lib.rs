//! # sigrec-bench
//!
//! The experiment harness: one function per table and figure of the
//! paper's evaluation (§5–§6), each returning a rendered text report whose
//! rows mirror the paper's. The `repro` binary drives them from the
//! command line; Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]

pub mod ablation;
pub mod accuracy;
pub mod apps;
pub mod conformance;
pub mod replay;
pub mod report;
pub mod throughput;
pub mod timing;

pub use ablation::{ablated_accuracy, ablation, obfuscation, Ablation};
pub use accuracy::{fig15, fig16, rq1, table1, table2, table3, table4, table5, Scale};
pub use apps::{attacks, erays, fig19, fuzzing};
pub use conformance::conformance;
pub use replay::replay;
pub use throughput::{duplicate_with_skew, throughput};
pub use timing::{dimension_series, fig17, fig18};
