//! Accuracy experiments: RQ1, RQ2 (Figs. 15–16), and the §5.6 comparisons
//! (Tables 1–5).

use crate::report::{pct, TextTable};
use sigrec_core::SigRec;
use sigrec_corpus::{datasets, evaluate, Corpus, Toolchain};
use sigrec_efsd::{
    reference_outputs, run_tool, DbTool, Efsd, EveemTool, GigahorseTool, RecoveryTool, SigRecTool,
    ToolReport,
};

/// Experiment scale: contracts per corpus. The paper runs on millions;
/// the default reproduces every trend at laptop scale.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Contracts in dataset-1/3-like corpora.
    pub contracts: usize,
    /// Contracts per compiler version in the RQ2 sweeps.
    pub per_version: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            contracts: 600,
            per_version: 12,
            seed: 0x516_7EC,
        }
    }
}

/// RQ1: headline accuracy (paper: 98.74 % Solidity, 97.77 % Vyper,
/// 98.7 % overall).
pub fn rq1(scale: &Scale) -> String {
    let sigrec = SigRec::new();
    let sol = datasets::dataset3(scale.contracts, scale.seed);
    let vy = datasets::vyper_corpus(scale.contracts.div_ceil(4), scale.seed + 1);
    let es = evaluate(&sigrec, &sol);
    let ev = evaluate(&sigrec, &vy);
    let overall = (es.correct() + ev.correct()) as f64 / (es.total() + ev.total()) as f64;
    let mut t = TextTable::new(&["corpus", "functions", "accuracy", "paper", "soundness"]);
    t.row(&[
        "Solidity".into(),
        es.total().to_string(),
        pct(es.accuracy()),
        "98.7%".into(),
        pct(es.soundness_accuracy()),
    ]);
    t.row(&[
        "Vyper".into(),
        ev.total().to_string(),
        pct(ev.accuracy()),
        "97.8%".into(),
        pct(ev.soundness_accuracy()),
    ]);
    t.row(&[
        "overall".into(),
        (es.total() + ev.total()).to_string(),
        pct(overall),
        "98.7%".into(),
        String::new(),
    ]);
    format!("RQ1 — recovery accuracy (§5.2)\n{}", t.render())
}

/// Fig. 15: accuracy per Solidity compiler version (paper: ≥ 96 % for all
/// 155 versions).
pub fn fig15(scale: &Scale) -> String {
    let sigrec = SigRec::new();
    let mut t = TextTable::new(&["solc version", "optimize", "functions", "accuracy"]);
    let mut min_acc: f64 = 1.0;
    for (version, optimize, corpus) in
        datasets::solidity_version_sweep(scale.per_version, scale.seed + 2)
    {
        let e = evaluate(&sigrec, &corpus);
        min_acc = min_acc.min(e.accuracy());
        t.row(&[
            version.to_string(),
            optimize.to_string(),
            e.total().to_string(),
            pct(e.accuracy()),
        ]);
    }
    format!(
        "Fig. 15 — accuracy across Solidity versions (paper: never < 96%)\n{}\nminimum: {}\n",
        t.render(),
        pct(min_acc)
    )
}

/// Fig. 16: accuracy per Vyper version (paper: > 90 % for 12 of 15; dips
/// only where the per-version contract count is tiny).
pub fn fig16(scale: &Scale) -> String {
    let sigrec = SigRec::new();
    let mut t = TextTable::new(&["vyper version", "contracts", "functions", "accuracy"]);
    for (version, corpus) in datasets::vyper_version_sweep(scale.per_version, scale.seed + 3) {
        let e = evaluate(&sigrec, &corpus);
        t.row(&[
            version.to_string(),
            corpus.contracts.len().to_string(),
            e.total().to_string(),
            pct(e.accuracy()),
        ]);
    }
    format!(
        "Fig. 16 — accuracy across Vyper versions (dips only at tiny-sample versions)\n{}",
        t.render()
    )
}

fn comparison_table(title: &str, corpus: &Corpus, db: &Efsd, with_reference: bool) -> String {
    let sigrec_tool = SigRecTool::new();
    let reference = if with_reference {
        Some(reference_outputs(&sigrec_tool, corpus))
    } else {
        None
    };
    let tools: Vec<Box<dyn RecoveryTool>> = vec![
        Box::new(SigRecTool::new()),
        Box::new(GigahorseTool::new(db.clone())),
        Box::new(EveemTool::new(db.clone())),
        Box::new(DbTool::new("OSD", db.clone(), 1.0)),
        Box::new(DbTool::new("EBD", db.clone(), 0.88)),
        Box::new(DbTool::new("JEB", db.clone(), 0.78)),
    ];
    let mut t = TextTable::new(&[
        "tool",
        "accuracy",
        "missing",
        "wrong types",
        "wrong count",
        "aborted",
        if with_reference {
            "agree w/ SigRec"
        } else {
            ""
        },
    ]);
    let mut rows: Vec<ToolReport> = Vec::new();
    for tool in &tools {
        rows.push(run_tool(tool.as_ref(), corpus, reference.as_ref()));
    }
    for r in &rows {
        t.row(&[
            r.tool.clone(),
            pct(r.accuracy()),
            r.missing.to_string(),
            r.wrong_types.to_string(),
            r.wrong_count.to_string(),
            pct(r.abort_ratio()),
            if with_reference {
                pct(r.agreement())
            } else {
                String::new()
            },
        ]);
    }
    format!("{title}\n{}", t.render())
}

/// Table 1: closed-source dataset — agreement with SigRec and abort rates.
pub fn table1(scale: &Scale) -> String {
    let corpus = datasets::dataset1(scale.contracts, scale.seed + 4);
    // Closed-source coverage is poor: most ids unknown to the databases.
    let db = Efsd::seeded_from(&corpus, 0.33, scale.seed + 5);
    comparison_table(
        "Table 1 — dataset 1 (closed-source-like): tools vs SigRec",
        &corpus,
        &db,
        true,
    )
}

/// Table 2: 1 000 synthesized functions — database tools recover nothing
/// (paper: SigRec 98.8 %, OSD/EBD/JEB 0 %, Eveem 18.3 %).
pub fn table2(scale: &Scale) -> String {
    let corpus = datasets::dataset2(scale.seed + 6);
    // Synthesized names exist in no database.
    let db = Efsd::new();
    comparison_table(
        "Table 2 — dataset 2 (1,000 synthesized functions; ids not in any database)",
        &corpus,
        &db,
        false,
    )
}

/// Table 3: open-source dataset — the databases know ~51 % of signatures
/// (paper: SigRec ≥ +22.5 % over the best baseline).
pub fn table3(scale: &Scale) -> String {
    let corpus = datasets::dataset3(scale.contracts, scale.seed + 7);
    let db = Efsd::seeded_from(&corpus, 0.51, scale.seed + 8);
    comparison_table(
        "Table 3 — dataset 3 (open-source-like)",
        &corpus,
        &db,
        false,
    )
}

/// Table 4: struct and nested-array parameters (paper: SigRec 61.3 %,
/// baselines ≤ 11 %).
pub fn table4(scale: &Scale) -> String {
    let corpus = datasets::struct_nested_corpus(scale.contracts.min(400), 0.387, scale.seed + 9);
    // ~10 % of these signatures happen to be in the database (Table 4's
    // explanation of the baselines' 10.1 %).
    let db = Efsd::seeded_from(&corpus, 0.101, scale.seed + 10);
    comparison_table(
        "Table 4 — struct & nested-array parameters (ABIEncoderV2)",
        &corpus,
        &db,
        false,
    )
}

/// Table 5: Vyper contracts (paper: baselines near zero — Vyper signatures
/// are largely absent from databases and the baselines' rules assume
/// Solidity patterns).
pub fn table5(scale: &Scale) -> String {
    let corpus = datasets::vyper_corpus(scale.contracts.div_ceil(3), scale.seed + 11);
    debug_assert!(corpus
        .contracts
        .iter()
        .all(|c| matches!(c.toolchain, Toolchain::Vyper(_))));
    let db = Efsd::seeded_from(&corpus, 0.08, scale.seed + 12);
    comparison_table("Table 5 — Vyper contracts", &corpus, &db, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            contracts: 30,
            per_version: 2,
            seed: 7,
        }
    }

    #[test]
    fn rq1_reports_high_accuracy() {
        let out = rq1(&tiny());
        assert!(out.contains("Solidity"));
        assert!(out.contains("Vyper"));
        assert!(out.contains("overall"));
    }

    #[test]
    fn table2_zeroes_db_tools() {
        let out = table2(&tiny());
        // OSD row must show 0.0% accuracy (nothing in the database).
        let osd_line = out.lines().find(|l| l.starts_with("OSD")).unwrap();
        let acc = osd_line.split_whitespace().nth(1).unwrap();
        assert_eq!(acc, "0.0%", "{osd_line}");
        let sig_line = out.lines().find(|l| l.starts_with("SigRec")).unwrap();
        let acc = sig_line.split_whitespace().nth(1).unwrap();
        assert_ne!(acc, "0.0%", "{sig_line}");
    }

    #[test]
    fn comparison_orders_sigrec_first() {
        let out = table3(&tiny());
        let first_row = out.lines().nth(3).unwrap();
        assert!(first_row.starts_with("SigRec"), "{first_row}");
    }
}
