//! Criterion micro-benchmarks for the recovery pipeline (Fig. 17's
//! per-function cost at fixed workloads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sigrec_abi::FunctionSignature;
use sigrec_core::SigRec;
use sigrec_solc::{compile_single, CompilerConfig, FunctionSpec, Visibility};

fn contract(decl: &str, vis: Visibility) -> Vec<u8> {
    compile_single(
        FunctionSpec::new(FunctionSignature::parse(decl).unwrap(), vis),
        &CompilerConfig::default(),
    )
    .code
}

fn bench_recovery(c: &mut Criterion) {
    let sigrec = SigRec::new();
    let cases = [
        (
            "basic",
            contract("f(address,uint256,bool)", Visibility::External),
        ),
        (
            "static_array",
            contract("f(uint256[3][2])", Visibility::Public),
        ),
        ("dynamic_array", contract("f(uint8[])", Visibility::Public)),
        ("bytes", contract("f(bytes)", Visibility::Public)),
        (
            "nested_array",
            contract("f(uint256[][])", Visibility::External),
        ),
        (
            "dynamic_struct",
            contract("f((uint256[],uint256))", Visibility::External),
        ),
    ];
    let mut group = c.benchmark_group("recovery_time");
    for (name, code) in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), code, |b, code| {
            b.iter(|| {
                let out = sigrec.recover(std::hint::black_box(code));
                assert_eq!(out.len(), 1);
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_recovery
}
criterion_main!(benches);
