//! Criterion micro-benchmarks for path-state forking: copy-on-write
//! forks must stay flat as the forked stack deepens, while the eager
//! deep clone grows linearly with depth. Run with
//! `cargo bench -p sigrec-bench --bench fork_cost`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sigrec_core::expr::Expr;
use sigrec_core::CowStack;
use std::hint::black_box;
use std::rc::Rc;

/// A stack of `depth` distinct interned expressions, as a forked path
/// would hold after deep concrete execution.
fn deep_stack(depth: usize) -> CowStack<Rc<Expr>> {
    let mut stack = CowStack::new();
    for i in 0..depth as u64 {
        stack.push(Expr::c64(i));
    }
    stack
}

fn bench_fork(c: &mut Criterion) {
    let depths = [256usize, 4_096, 65_536];

    let mut group = c.benchmark_group("fork_cow");
    for &depth in &depths {
        // Pre-forked once so the benchmarked fork sees a frozen prefix +
        // empty tail — the steady state inside a fork-heavy exploration.
        let mut stack = deep_stack(depth);
        let _warm = stack.fork();
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| black_box(&mut stack).fork());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fork_eager_clone");
    for &depth in &depths {
        let stack = deep_stack(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| black_box(&stack).deep_clone());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_fork
}
criterion_main!(benches);
