//! Substrate micro-benchmarks: Keccak-256, U256 arithmetic, ABI
//! encode/decode, concrete interpretation, and batch recovery throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sigrec_abi::{decode, encode, AbiType, AbiValue, FunctionSignature};
use sigrec_core::{recover_batch, SigRec};
use sigrec_evm::{keccak256, Env, Interpreter, U256};
use sigrec_solc::{compile_single, CompilerConfig, FunctionSpec, Visibility};

fn bench_keccak(c: &mut Criterion) {
    let mut group = c.benchmark_group("keccak256");
    for size in [32usize, 1024, 65536] {
        let data = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{}B", size), |b| {
            b.iter(|| keccak256(std::hint::black_box(&data)));
        });
    }
    group.finish();
}

fn bench_u256(c: &mut Criterion) {
    let a =
        U256::from_hex("deadbeefcafebabe0123456789abcdef00ff00ff00ff00ff1122334455667788").unwrap();
    let b2 = U256::from_hex("0123456789abcdef").unwrap();
    let mut group = c.benchmark_group("u256");
    group.bench_function("mul", |b| {
        b.iter(|| std::hint::black_box(a) * std::hint::black_box(b2))
    });
    group.bench_function("div", |b| {
        b.iter(|| std::hint::black_box(a) / std::hint::black_box(b2))
    });
    group.bench_function("signed_div", |b| {
        b.iter(|| std::hint::black_box(a).signed_div(std::hint::black_box(b2)))
    });
    group.bench_function("mulmod", |b| {
        b.iter(|| {
            std::hint::black_box(a).mul_mod(std::hint::black_box(a), std::hint::black_box(b2))
        })
    });
    group.finish();
}

fn bench_abi(c: &mut Criterion) {
    let types: Vec<AbiType> = vec![
        AbiType::Address,
        AbiType::parse("uint8[]").unwrap(),
        AbiType::Bytes,
    ];
    let values = vec![
        AbiValue::Address(U256::from(7u64)),
        AbiValue::Array(vec![AbiValue::Uint(U256::ONE); 8]),
        AbiValue::Bytes(vec![0xee; 100]),
    ];
    let data = encode(&types, &values).unwrap();
    let mut group = c.benchmark_group("abi");
    group.bench_function("encode", |b| {
        b.iter(|| encode(std::hint::black_box(&types), std::hint::black_box(&values)).unwrap())
    });
    group.bench_function("decode", |b| {
        b.iter(|| decode(std::hint::black_box(&types), std::hint::black_box(&data)).unwrap())
    });
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let sig = FunctionSignature::parse("f(uint256[])").unwrap();
    let contract = compile_single(
        FunctionSpec::new(sig.clone(), Visibility::Public),
        &CompilerConfig::default(),
    );
    let values = vec![AbiValue::Array(vec![AbiValue::Uint(U256::ONE); 16])];
    let calldata = sigrec_abi::encode_call(&sig, &values).unwrap();
    let interp = Interpreter::new(&contract.code);
    c.bench_function("interpreter_run", |b| {
        b.iter(|| interp.run(&Env::with_calldata(std::hint::black_box(calldata.clone()))))
    });
}

fn bench_batch(c: &mut Criterion) {
    let codes: Vec<Vec<u8>> = (0..32)
        .map(|i| {
            let decl = format!("fn{}(address,uint256[],bool)", i);
            compile_single(
                FunctionSpec::new(FunctionSignature::parse(&decl).unwrap(), Visibility::Public),
                &CompilerConfig::default(),
            )
            .code
        })
        .collect();
    let sigrec = SigRec::new();
    let mut group = c.benchmark_group("batch_recovery");
    for workers in [1usize, 4] {
        group.bench_function(format!("{}workers", workers), |b| {
            b.iter(|| recover_batch(&sigrec, std::hint::black_box(&codes), workers))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_keccak, bench_u256, bench_abi, bench_interpreter, bench_batch
}
criterion_main!(benches);
