//! Fig. 18 as a Criterion benchmark: recovery time vs array dimension
//! (the paper reports linear growth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sigrec_abi::{AbiType, FunctionSignature};
use sigrec_core::SigRec;
use sigrec_solc::{compile_single, CompilerConfig, FunctionSpec, Visibility};

fn bench_dimensions(c: &mut Criterion) {
    let sigrec = SigRec::new();
    let mut group = c.benchmark_group("array_dimension");
    for dim in [1usize, 2, 4, 8, 12, 16, 20] {
        let mut ty = AbiType::Uint(256);
        for _ in 0..dim {
            ty = AbiType::DynArray(Box::new(ty));
        }
        let sig = FunctionSignature::from_declaration("probe", vec![ty]);
        let code = compile_single(
            FunctionSpec::new(sig, Visibility::External),
            &CompilerConfig::default(),
        )
        .code;
        group.bench_with_input(BenchmarkId::from_parameter(dim), &code, |b, code| {
            b.iter(|| {
                let out = sigrec.recover(std::hint::black_box(code));
                assert_eq!(out.len(), 1);
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_dimensions
}
criterion_main!(benches);
