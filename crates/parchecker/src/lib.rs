//! # sigrec-parchecker
//!
//! ParChecker (§6.1 of the SigRec paper): detection of *invalid actual
//! arguments* in function invocations, driven by recovered function
//! signatures. Given the call data of an invocation, ParChecker looks up
//! the recovered signature by function id and validates the encoding —
//! padding per type, offset/num structure of dynamic types, payload
//! lengths — flagging malformed payloads and, specifically, *short address
//! attacks* (a truncated `address` argument whose missing bytes the EVM
//! steals from the following `uint256`, multiplying the transferred amount
//! by 256 per stolen byte).

#![warn(missing_docs)]

use sigrec_abi::{decode, AbiType, DecodeError, Selector};
use sigrec_core::{RecoveredFunction, SigRec};
use std::collections::HashMap;
use std::fmt;

/// Verdict for one invocation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckResult {
    /// The arguments are encoded per the ABI specification.
    Valid,
    /// The arguments are malformed; the decoder error explains how.
    Invalid(DecodeError),
    /// The calldata is shorter than a function id.
    NoFunctionId,
    /// The function id is not among the recovered signatures, so the
    /// arguments cannot be validated.
    UnknownFunction(Selector),
}

impl CheckResult {
    /// True for [`CheckResult::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, CheckResult::Valid)
    }
}

impl fmt::Display for CheckResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckResult::Valid => write!(f, "valid"),
            CheckResult::Invalid(e) => write!(f, "invalid: {e}"),
            CheckResult::NoFunctionId => write!(f, "calldata shorter than a function id"),
            CheckResult::UnknownFunction(s) => write!(f, "unknown function {s}"),
        }
    }
}

/// The invalid-argument detector.
///
/// # Examples
///
/// ```
/// use sigrec_parchecker::ParChecker;
/// use sigrec_abi::{encode_call, AbiValue, FunctionSignature};
/// use sigrec_evm::U256;
///
/// let sig = FunctionSignature::parse("transfer(address,uint256)").unwrap();
/// let mut checker = ParChecker::new();
/// checker.add_signature(sig.selector, sig.params.clone());
///
/// // A vanity address ending in two zero bytes — the attack's ingredient.
/// let good = encode_call(&sig, &[
///     AbiValue::Address(U256::from(0xabc_0000u64)),
///     AbiValue::Uint(U256::from(1000u64)),
/// ]).unwrap();
/// assert!(checker.check(&good).is_valid());
///
/// // The attacker omits the address's trailing zero bytes:
/// let mut attack = good.clone();
/// attack.drain(4 + 30..4 + 32);
/// assert!(!checker.check(&attack).is_valid());
/// assert!(checker.is_short_address_attack(&attack));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ParChecker {
    signatures: HashMap<Selector, Vec<AbiType>>,
}

impl ParChecker {
    /// An empty checker (no known signatures).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a recovered signature.
    pub fn add_signature(&mut self, selector: Selector, params: Vec<AbiType>) {
        self.signatures.insert(selector, params);
    }

    /// Builds a checker from SigRec's output for one contract.
    pub fn from_recovered(functions: &[RecoveredFunction]) -> Self {
        let mut c = ParChecker::new();
        for f in functions {
            c.add_signature(f.selector, f.params.clone());
        }
        c
    }

    /// Builds a checker by running SigRec over a set of contracts.
    pub fn from_bytecode<'a>(codes: impl IntoIterator<Item = &'a [u8]>) -> Self {
        let sigrec = SigRec::new();
        let mut c = ParChecker::new();
        for code in codes {
            for f in sigrec.recover(code) {
                c.add_signature(f.selector, f.params);
            }
        }
        c
    }

    /// Number of known signatures.
    pub fn signature_count(&self) -> usize {
        self.signatures.len()
    }

    /// Validates one invocation's calldata.
    pub fn check(&self, calldata: &[u8]) -> CheckResult {
        if calldata.len() < 4 {
            return CheckResult::NoFunctionId;
        }
        let selector = Selector([calldata[0], calldata[1], calldata[2], calldata[3]]);
        let Some(params) = self.signatures.get(&selector) else {
            return CheckResult::UnknownFunction(selector);
        };
        match decode(params, &calldata[4..]) {
            Ok(_) => CheckResult::Valid,
            Err(e) => CheckResult::Invalid(e),
        }
    }

    /// The §6.1 short-address-attack test: the target takes
    /// `(address, uint256, …)`, the arguments are shorter than the head
    /// requires, and the highest missing-byte-count bytes of the last
    /// 32-byte word are zeros (they would be used to complete the short
    /// address, shifting the amount).
    pub fn is_short_address_attack(&self, calldata: &[u8]) -> bool {
        if calldata.len() < 4 {
            return false;
        }
        let selector = Selector([calldata[0], calldata[1], calldata[2], calldata[3]]);
        let Some(params) = self.signatures.get(&selector) else {
            return false;
        };
        if params.len() < 2 || params[0] != AbiType::Address || params[1] != AbiType::Uint(256) {
            return false;
        }
        let expected: usize = params.iter().map(AbiType::head_size).sum();
        let args = &calldata[4..];
        if args.len() >= expected || args.len() < 33 {
            return false;
        }
        let missing = expected - args.len();
        if missing > 31 {
            return false;
        }
        // Highest `missing` bytes of the last 32 bytes must be zeros.
        let last = &args[args.len() - 32..];
        last[..missing].iter().all(|&b| b == 0)
    }
}

/// Outcome counters for a traffic sweep (the §6.1 experiment).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Transactions examined.
    pub total: usize,
    /// Transactions that validated.
    pub valid: usize,
    /// Transactions flagged invalid.
    pub invalid: usize,
    /// Transactions with unknown function ids.
    pub unknown: usize,
    /// Invalid transactions additionally identified as short-address
    /// attacks.
    pub short_address_attacks: usize,
    /// Invalid transactions by failure class.
    pub by_kind: InvalidBreakdown,
}

/// Failure-class counters for flagged transactions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InvalidBreakdown {
    /// Truncated calldata (the short-address shape).
    pub truncated: usize,
    /// Non-zero high-order padding (`uintM`/`address`).
    pub left_padding: usize,
    /// Non-zero low-order padding (`bytesM`, `bytes`, `string`).
    pub right_padding: usize,
    /// Broken sign extension (`intM`).
    pub sign_extension: usize,
    /// Non-boolean `bool` words.
    pub bad_bool: usize,
    /// Offsets or lengths outside the calldata.
    pub unrepresentable: usize,
}

impl InvalidBreakdown {
    fn record(&mut self, e: &DecodeError) {
        match e {
            DecodeError::OutOfBounds { .. } => self.truncated += 1,
            DecodeError::BadLeftPadding { .. } => self.left_padding += 1,
            DecodeError::BadRightPadding { .. } => self.right_padding += 1,
            DecodeError::BadSignExtension { .. } => self.sign_extension += 1,
            DecodeError::BadBool { .. } => self.bad_bool += 1,
            DecodeError::Unrepresentable { .. } => self.unrepresentable += 1,
        }
    }
}

impl ParChecker {
    /// Sweeps a transaction stream, producing the §6.1 counters.
    pub fn sweep<'a>(&self, calldatas: impl IntoIterator<Item = &'a [u8]>) -> TrafficReport {
        let mut r = TrafficReport::default();
        for cd in calldatas {
            r.total += 1;
            match self.check(cd) {
                CheckResult::Valid => r.valid += 1,
                CheckResult::Invalid(e) => {
                    r.invalid += 1;
                    r.by_kind.record(&e);
                    if self.is_short_address_attack(cd) {
                        r.short_address_attacks += 1;
                    }
                }
                CheckResult::NoFunctionId => {
                    r.invalid += 1;
                }
                CheckResult::UnknownFunction(_) => r.unknown += 1,
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigrec_abi::{encode_call, AbiValue, FunctionSignature};
    use sigrec_evm::U256;

    fn checker_for(decl: &str) -> (ParChecker, FunctionSignature) {
        let sig = FunctionSignature::parse(decl).unwrap();
        let mut c = ParChecker::new();
        c.add_signature(sig.selector, sig.params.clone());
        (c, sig)
    }

    #[test]
    fn valid_calldata_passes() {
        let (c, sig) = checker_for("transfer(address,uint256)");
        let cd = encode_call(
            &sig,
            &[
                AbiValue::Address(U256::ONE),
                AbiValue::Uint(U256::from(10u64)),
            ],
        )
        .unwrap();
        assert_eq!(c.check(&cd), CheckResult::Valid);
        assert!(!c.is_short_address_attack(&cd));
    }

    #[test]
    fn dirty_padding_rejected() {
        let (c, sig) = checker_for("f(address)");
        let mut cd = encode_call(&sig, &[AbiValue::Address(U256::from(5u64))]).unwrap();
        cd[5] = 0xff; // inside the 12 padding bytes
        assert!(matches!(c.check(&cd), CheckResult::Invalid(_)));
    }

    #[test]
    fn unknown_selector_reported() {
        let (c, _) = checker_for("f(address)");
        let cd = vec![0xde, 0xad, 0xbe, 0xef, 0u8];
        assert!(matches!(c.check(&cd), CheckResult::UnknownFunction(_)));
        assert_eq!(c.check(&[0x01]), CheckResult::NoFunctionId);
    }

    #[test]
    fn short_address_attack_detected() {
        let (c, sig) = checker_for("transfer(address,uint256)");
        // Address ending in 2 zero bytes; attacker omits them.
        let addr = U256::from(0xabcd_0000u64) << 64u32;
        let cd = encode_call(
            &sig,
            &[
                AbiValue::Address(addr),
                AbiValue::Uint(U256::from(10_000u64)),
            ],
        )
        .unwrap();
        let mut attack = cd.clone();
        attack.drain(4 + 30..4 + 32); // drop the address's low 2 bytes
        assert!(!c.check(&attack).is_valid());
        assert!(c.is_short_address_attack(&attack));
    }

    #[test]
    fn attack_test_requires_transfer_shape() {
        let (c, sig) = checker_for("f(uint256,uint256)");
        let cd = encode_call(
            &sig,
            &[AbiValue::Uint(U256::ONE), AbiValue::Uint(U256::ONE)],
        )
        .unwrap();
        let mut short = cd.clone();
        short.truncate(short.len() - 2);
        assert!(!c.is_short_address_attack(&short), "not (address,uint256)");
    }

    #[test]
    fn attack_test_requires_zero_high_bytes() {
        let (c, sig) = checker_for("transfer(address,uint256)");
        let cd = encode_call(
            &sig,
            // An address with non-zero low bytes cannot have been shortened
            // by omitting trailing zeros.
            &[
                AbiValue::Address(U256::from(0x1234_5678_90ab_cdefu64)),
                AbiValue::Uint(U256::MAX),
            ],
        )
        .unwrap();
        let mut short = cd.clone();
        short.truncate(short.len() - 2);
        assert!(!c.is_short_address_attack(&short));
    }

    #[test]
    fn sweep_counts() {
        let (c, sig) = checker_for("transfer(address,uint256)");
        let good = encode_call(
            &sig,
            // Address ending in a zero byte: its truncation is the attack
            // shape.
            &[
                AbiValue::Address(U256::from(0x100u64)),
                AbiValue::Uint(U256::from(1u64)),
            ],
        )
        .unwrap();
        let mut bad = good.clone();
        bad.truncate(bad.len() - 1);
        let unknown = vec![0xde, 0xad, 0xbe, 0xef];
        let report = c.sweep([good.as_slice(), bad.as_slice(), unknown.as_slice()]);
        assert_eq!(report.total, 3);
        assert_eq!(report.valid, 1);
        assert_eq!(report.invalid, 1);
        assert_eq!(report.unknown, 1);
        assert_eq!(report.short_address_attacks, 1);
        assert_eq!(report.by_kind.truncated, 1);
        assert_eq!(report.by_kind.bad_bool, 0);
    }

    #[test]
    fn breakdown_classifies_kinds() {
        let (c, sig) = checker_for("g(bool,bytes2)");
        let good = encode_call(
            &sig,
            &[AbiValue::Bool(true), AbiValue::FixedBytes(vec![1, 2])],
        )
        .unwrap();
        let mut bad_bool = good.clone();
        bad_bool[4 + 31] = 0x05;
        let mut dirty_right = good.clone();
        dirty_right[4 + 32 + 31] = 0x09;
        let report = c.sweep([bad_bool.as_slice(), dirty_right.as_slice()]);
        assert_eq!(report.by_kind.bad_bool, 1);
        assert_eq!(report.by_kind.right_padding, 1);
        assert_eq!(report.invalid, 2);
    }
}
