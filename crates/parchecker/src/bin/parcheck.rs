//! Command-line invalid-calldata checking.
//!
//! ```text
//! parcheck <signatures-file> <calldata-hex | ->
//! ```
//!
//! The signatures file holds one canonical declaration per line, e.g.
//! `transfer(address,uint256)` (lines starting with `#` are comments).
//! The calldata is hex (0x prefix allowed), or `-` to read from stdin.
//! Prints the verdict, the decoded arguments for valid payloads, and a
//! short-address-attack warning when the shape matches.

use sigrec_abi::{decode, pretty_args, FunctionSignature};
use sigrec_parchecker::{CheckResult, ParChecker};
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 2 {
        eprintln!("usage: parcheck <signatures-file> <calldata-hex | ->");
        std::process::exit(2);
    }
    let sigs = std::fs::read_to_string(&args[0]).unwrap_or_else(|e| {
        eprintln!("parcheck: cannot read {}: {e}", args[0]);
        std::process::exit(2);
    });
    let mut checker = ParChecker::new();
    let mut parsed = Vec::new();
    for line in sigs.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match FunctionSignature::parse(line) {
            Ok(sig) => {
                checker.add_signature(sig.selector, sig.params.clone());
                parsed.push(sig);
            }
            Err(e) => {
                eprintln!("parcheck: skipping {:?}: {e}", line);
            }
        }
    }
    let raw = if args[1] == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s).expect("read stdin");
        s
    } else {
        args[1].clone()
    };
    let cleaned: String = raw.chars().filter(|c| !c.is_whitespace()).collect();
    let cleaned = cleaned.strip_prefix("0x").unwrap_or(&cleaned);
    let calldata: Vec<u8> = match (0..cleaned.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(cleaned.get(i..i + 2).unwrap_or("zz"), 16).ok())
        .collect()
    {
        Some(v) => v,
        None => {
            eprintln!("parcheck: calldata is not hex");
            std::process::exit(2);
        }
    };

    let verdict = checker.check(&calldata);
    println!("verdict: {}", verdict);
    match &verdict {
        CheckResult::Valid => {
            let sig = parsed
                .iter()
                .find(|s| s.selector.0[..] == calldata[..4])
                .expect("valid implies known");
            println!("function: {}", sig.canonical());
            let values = decode(&sig.params, &calldata[4..]).expect("valid implies decodable");
            print!("{}", pretty_args(&sig.params, &values));
        }
        CheckResult::Invalid(_) => {
            if checker.is_short_address_attack(&calldata) {
                println!("WARNING: shape matches a SHORT ADDRESS ATTACK");
            }
            std::process::exit(1);
        }
        _ => std::process::exit(1),
    }
}
