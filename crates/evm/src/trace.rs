//! Structured execution tracing.
//!
//! A [`Tracer`] receives one event per executed instruction — pc, opcode,
//! gas, and the top of the stack — letting tools observe executions without
//! re-implementing the interpreter loop: debuggers, coverage analysers, or
//! differential testers. [`TraceCollector`] is the buffering implementation.

use crate::opcode::Opcode;
use crate::u256::U256;
use std::fmt;

/// One executed instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceStep {
    /// Program counter.
    pub pc: usize,
    /// The opcode executed.
    pub opcode: Opcode,
    /// Stack depth *before* the instruction.
    pub stack_depth: usize,
    /// Up to the four top stack items before the instruction (top first).
    pub stack_top: Vec<U256>,
    /// Cumulative gas after charging this instruction's static cost.
    pub gas_used: u64,
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#06x} {:<14} depth={}",
            self.pc,
            self.opcode.mnemonic(),
            self.stack_depth
        )?;
        if !self.stack_top.is_empty() {
            write!(f, " top=[")?;
            for (i, v) in self.stack_top.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "0x{:x}", v)?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// Receives execution events.
pub trait Tracer {
    /// Called once per executed instruction, before its effects.
    fn step(&mut self, step: &TraceStep);
}

/// A tracer that buffers every step.
#[derive(Debug, Default)]
pub struct TraceCollector {
    steps: Vec<TraceStep>,
}

impl TraceCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected steps.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Consumes the collector, returning the steps.
    pub fn into_steps(self) -> Vec<TraceStep> {
        self.steps
    }

    /// Renders the whole trace, one step per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            out.push_str(&s.to_string());
            out.push('\n');
        }
        out
    }
}

impl Tracer for TraceCollector {
    fn step(&mut self, step: &TraceStep) {
        self.steps.push(step.clone());
    }
}

/// A tracer that only counts instruction frequencies — cheap profiling.
#[derive(Debug, Default)]
pub struct OpcodeHistogram {
    counts: std::collections::BTreeMap<String, u64>,
}

impl OpcodeHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Executions of one mnemonic.
    pub fn count(&self, mnemonic: &str) -> u64 {
        self.counts.get(mnemonic).copied().unwrap_or(0)
    }

    /// `(mnemonic, count)` pairs, most frequent first.
    pub fn top(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self.counts.iter().map(|(k, &c)| (k.as_str(), c)).collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }
}

impl Tracer for OpcodeHistogram {
    fn step(&mut self, step: &TraceStep) {
        *self.counts.entry(step.opcode.mnemonic()).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Env, Interpreter};

    #[test]
    fn collector_records_every_step() {
        // PUSH1 2 PUSH1 3 ADD POP STOP
        let code = [0x60, 0x02, 0x60, 0x03, 0x01, 0x50, 0x00];
        let mut tracer = TraceCollector::new();
        let exec = Interpreter::new(&code).run_traced(&Env::default(), &mut tracer);
        assert!(exec.succeeded());
        let steps = tracer.steps();
        assert_eq!(steps.len(), 5);
        assert_eq!(steps[0].opcode, crate::opcode::Opcode::Push(1));
        // The ADD sees two items on the stack, top first.
        let add = &steps[2];
        assert_eq!(add.opcode, crate::opcode::Opcode::Add);
        assert_eq!(add.stack_depth, 2);
        assert_eq!(add.stack_top[0], U256::from(3u64));
        assert_eq!(add.stack_top[1], U256::from(2u64));
        // Gas accumulates monotonically.
        for w in steps.windows(2) {
            assert!(w[1].gas_used >= w[0].gas_used);
        }
    }

    #[test]
    fn histogram_counts() {
        let code = [0x60, 0x01, 0x60, 0x02, 0x01, 0x50, 0x00];
        let mut h = OpcodeHistogram::new();
        Interpreter::new(&code).run_traced(&Env::default(), &mut h);
        assert_eq!(h.count("PUSH1"), 2);
        assert_eq!(h.count("ADD"), 1);
        assert_eq!(h.top()[0].1, 2);
    }

    #[test]
    fn untraced_run_matches_traced() {
        let code = [0x60, 0x2a, 0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3];
        let plain = Interpreter::new(&code).run(&Env::default());
        let mut t = TraceCollector::new();
        let traced = Interpreter::new(&code).run_traced(&Env::default(), &mut t);
        assert_eq!(plain.outcome, traced.outcome);
        assert_eq!(plain.steps, traced.steps);
        assert_eq!(plain.gas_used, traced.gas_used);
        assert_eq!(plain.steps, t.steps().len());
    }

    #[test]
    fn display_format() {
        let s = TraceStep {
            pc: 4,
            opcode: crate::opcode::Opcode::Add,
            stack_depth: 2,
            stack_top: vec![U256::from(3u64), U256::from(2u64)],
            gas_used: 9,
        };
        assert_eq!(
            s.to_string(),
            "0x0004 ADD            depth=2 top=[0x3, 0x2]"
        );
    }
}
