//! A small EVM assembler with labels.
//!
//! The Solidity- and Vyper-pattern code generators build dispatcher and
//! parameter-access code through this builder: opcodes, auto-sized pushes,
//! and forward-referencing labels for jump targets. Label fixup sizes all
//! push-label instructions uniformly (`PUSH2`, like real compilers) so
//! offsets converge in a single pass.

use crate::opcode::Opcode;
use crate::u256::U256;
use std::collections::HashMap;

/// A label referencing a future `JUMPDEST` position.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

#[derive(Clone, Debug)]
enum Item {
    Op(Opcode),
    PushValue(Vec<u8>),
    PushLabel(Label),
    Bind(Label),
}

/// Builds EVM bytecode incrementally.
///
/// # Examples
///
/// ```
/// use sigrec_evm::{Assembler, Opcode, Interpreter, Env, Outcome};
///
/// let mut a = Assembler::new();
/// let done = a.fresh_label();
/// a.push_u64(1).push_label(done).op(Opcode::JumpI);
/// a.op(Opcode::Invalid(0xfe)); // skipped
/// a.bind(done).op(Opcode::JumpDest).op(Opcode::Stop);
/// let code = a.assemble();
/// assert_eq!(Interpreter::new(&code).run(&Env::default()).outcome, Outcome::Stop);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Assembler {
    items: Vec<Item>,
    next_label: usize,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh, unbound label.
    pub fn fresh_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Emits a plain opcode.
    ///
    /// # Panics
    ///
    /// Panics if given `Opcode::Push(_)` — use the `push_*` methods so the
    /// immediate is attached.
    pub fn op(&mut self, op: Opcode) -> &mut Self {
        assert!(
            !matches!(op, Opcode::Push(_)),
            "use push_* methods to emit PUSH instructions"
        );
        self.items.push(Item::Op(op));
        self
    }

    /// Emits the shortest `PUSHn` that holds `value`.
    pub fn push(&mut self, value: U256) -> &mut Self {
        let be = value.to_be_bytes();
        let first = be.iter().position(|&b| b != 0).unwrap_or(31);
        self.items.push(Item::PushValue(be[first..].to_vec()));
        self
    }

    /// Emits the shortest push of a `u64`.
    pub fn push_u64(&mut self, value: u64) -> &mut Self {
        self.push(U256::from(value))
    }

    /// Emits a push with an explicit width (e.g. `PUSH4` selectors,
    /// `PUSH20` address masks).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1–32 or `value` does not fit.
    pub fn push_sized(&mut self, value: U256, width: usize) -> &mut Self {
        assert!((1..=32).contains(&width), "push width must be 1-32");
        let be = value.to_be_bytes();
        assert!(
            be[..32 - width].iter().all(|&b| b == 0),
            "value does not fit in PUSH{}",
            width
        );
        self.items.push(Item::PushValue(be[32 - width..].to_vec()));
        self
    }

    /// Emits raw push bytes (already sized).
    pub fn push_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        assert!(
            (1..=32).contains(&bytes.len()),
            "push payload must be 1-32 bytes"
        );
        self.items.push(Item::PushValue(bytes.to_vec()));
        self
    }

    /// Emits a `PUSH2` whose value is resolved to `label`'s position.
    pub fn push_label(&mut self, label: Label) -> &mut Self {
        self.items.push(Item::PushLabel(label));
        self
    }

    /// Binds `label` to the current position. The caller emits the
    /// `JUMPDEST` itself (so the binding is visible next to the opcode).
    ///
    /// # Panics
    ///
    /// [`Self::assemble`] panics if a label is bound twice or pushed but
    /// never bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        self.items.push(Item::Bind(label));
        self
    }

    /// Convenience: bind + `JUMPDEST`.
    pub fn jumpdest(&mut self, label: Label) -> &mut Self {
        self.bind(label).op(Opcode::JumpDest)
    }

    /// Appends every item of another assembler (labels must be disjoint;
    /// use [`Self::fresh_label`] from a single parent to guarantee that).
    pub fn append(&mut self, other: Assembler) -> &mut Self {
        self.items.extend(other.items);
        self.next_label = self.next_label.max(other.next_label);
        self
    }

    /// Resolves labels and produces the final bytecode.
    ///
    /// # Panics
    ///
    /// Panics on unbound or doubly-bound labels, or if the program exceeds
    /// 65 535 bytes (`PUSH2` label width).
    pub fn assemble(&self) -> Vec<u8> {
        // Pass 1: compute item offsets. PushLabel is always PUSH2 (3 bytes).
        let mut offsets = HashMap::new();
        let mut pc = 0usize;
        for item in &self.items {
            match item {
                Item::Op(op) => pc += 1 + op.immediate_len(),
                Item::PushValue(v) => pc += 1 + v.len(),
                Item::PushLabel(_) => pc += 3,
                Item::Bind(l) => {
                    let prev = offsets.insert(*l, pc);
                    assert!(prev.is_none(), "label bound twice");
                }
            }
        }
        assert!(
            pc <= u16::MAX as usize,
            "program too large for PUSH2 labels"
        );
        // Pass 2: emit.
        let mut out = Vec::with_capacity(pc);
        for item in &self.items {
            match item {
                Item::Op(op) => out.push(op.to_byte()),
                Item::PushValue(v) => {
                    out.push(Opcode::Push(v.len() as u8).to_byte());
                    out.extend_from_slice(v);
                }
                Item::PushLabel(l) => {
                    let target = *offsets.get(l).expect("label pushed but never bound");
                    out.push(Opcode::Push(2).to_byte());
                    out.extend_from_slice(&(target as u16).to_be_bytes());
                }
                Item::Bind(_) => {}
            }
        }
        out
    }
}

/// Emits one unreachable "junk helper" block: a `JUMPDEST` no jump ever
/// targets, a handful of seed-derived arithmetic instructions, and a
/// terminator. Used by the metamorphic code generators to pad contracts
/// with dead code: everything goes through the assembler, so linear
/// disassembly stays aligned, and the block contains no selector
/// comparison, so dispatcher extraction cannot pick up phantom entries.
pub fn emit_junk_block(asm: &mut Assembler, seed: u64) {
    // xorshift64*: cheap, deterministic, and dependency-free.
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    asm.op(Opcode::JumpDest);
    let ops = 2 + next() % 5;
    for _ in 0..ops {
        asm.push_u64(next() % 0xffff).push_u64(next() % 0xffff);
        match next() % 4 {
            0 => asm.op(Opcode::Add),
            1 => asm.op(Opcode::Mul),
            2 => asm.op(Opcode::Xor),
            _ => asm.op(Opcode::And),
        };
        asm.op(Opcode::Pop);
    }
    if next() % 2 == 0 {
        asm.op(Opcode::Stop);
    } else {
        asm.push_u64(0).push_u64(0).op(Opcode::Revert);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::Disassembly;
    use crate::interp::{Env, Interpreter, Outcome};

    #[test]
    fn shortest_push_width() {
        let mut a = Assembler::new();
        a.push_u64(0x80);
        assert_eq!(a.assemble(), vec![0x60, 0x80]);
        let mut a = Assembler::new();
        a.push_u64(0x1234);
        assert_eq!(a.assemble(), vec![0x61, 0x12, 0x34]);
        let mut a = Assembler::new();
        a.push(U256::ZERO);
        assert_eq!(a.assemble(), vec![0x60, 0x00]);
    }

    #[test]
    fn sized_push() {
        let mut a = Assembler::new();
        a.push_sized(U256::from(0xa9059cbbu64), 4);
        assert_eq!(a.assemble(), vec![0x63, 0xa9, 0x05, 0x9c, 0xbb]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn sized_push_overflow_panics() {
        let mut a = Assembler::new();
        a.push_sized(U256::from(0x1_0000u64), 2);
        a.assemble();
    }

    #[test]
    fn forward_label_resolves() {
        let mut a = Assembler::new();
        let end = a.fresh_label();
        a.push_label(end).op(Opcode::Jump);
        a.op(Opcode::Invalid(0xfe));
        a.jumpdest(end).op(Opcode::Stop);
        let code = a.assemble();
        let exec = Interpreter::new(&code).run(&Env::default());
        assert_eq!(exec.outcome, Outcome::Stop);
    }

    #[test]
    fn backward_label_makes_loop() {
        // Countdown loop: i = 3; while (i != 0) i -= 1; stop.
        let mut a = Assembler::new();
        let head = a.fresh_label();
        let exit = a.fresh_label();
        a.push_u64(3);
        a.jumpdest(head);
        a.op(Opcode::Dup(1))
            .op(Opcode::IsZero)
            .push_label(exit)
            .op(Opcode::JumpI);
        a.push_u64(1).op(Opcode::Swap(1)).op(Opcode::Sub); // i - 1 (SUB pops a=i, b=1 → need i on top)
        a.push_label(head).op(Opcode::Jump);
        a.jumpdest(exit).op(Opcode::Stop);
        let exec = Interpreter::new(&a.assemble()).run(&Env::default());
        assert_eq!(exec.outcome, Outcome::Stop);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut a = Assembler::new();
        let l = a.fresh_label();
        a.push_label(l);
        a.assemble();
    }

    #[test]
    fn junk_blocks_are_well_formed_and_inert() {
        // A real program followed by junk: the junk is never reached, the
        // program still runs, and linear disassembly stays aligned.
        let mut a = Assembler::new();
        a.op(Opcode::Stop);
        for seed in 0..8 {
            emit_junk_block(&mut a, seed);
        }
        let code = a.assemble();
        assert_eq!(
            Interpreter::new(&code).run(&Env::default()).outcome,
            Outcome::Stop
        );
        let d = Disassembly::new(&code);
        assert!(d
            .instructions()
            .iter()
            .all(|i| !matches!(i.opcode, Opcode::Invalid(_))));
        // Deterministic per seed.
        let mut b = Assembler::new();
        b.op(Opcode::Stop);
        for seed in 0..8 {
            emit_junk_block(&mut b, seed);
        }
        assert_eq!(code, b.assemble());
    }

    #[test]
    fn disassembles_cleanly() {
        let mut a = Assembler::new();
        let l = a.fresh_label();
        a.push_u64(0)
            .op(Opcode::CallDataLoad)
            .push_label(l)
            .op(Opcode::JumpI);
        a.jumpdest(l).op(Opcode::Stop);
        let d = Disassembly::new(&a.assemble());
        assert_eq!(d.instructions().last().unwrap().opcode, Opcode::Stop);
    }
}
