//! Ahead-of-time block compilation of a [`Disassembly`] into a [`Program`].
//!
//! The symbolic executor's hot loop used to pay a binary-search `at(pc)`
//! lookup, a fresh `PUSH` immediate decode, and a full opcode dispatch on
//! every step. A `Program` is the pre-decoded form of one contract,
//! compiled once and shared (`Arc`) across every dispatch entry, scheduler
//! worker, and batch duplicate:
//!
//! - **one [`Step`] per instruction**, with `PUSH` immediates already
//!   parsed into [`U256`] — the step array is indexed by *instruction*, and
//!   an O(1) `pc → step` table ([`Program::step_at`]) replaces the
//!   per-step binary search;
//! - **basic blocks** cut at `JUMPDEST` leaders and after
//!   `JUMP`/`JUMPI`/terminators, each carrying static metadata (net stack
//!   delta, minimum entry stack depth, straight-line flag) and an O(1)
//!   `pc → block + offset` view ([`Program::block_of`]);
//! - **superinstruction fusion**: the calldata idioms the recovery rules
//!   key on (`PUSH k; CALLDATALOAD`, `PUSH 224; SHR` selector extraction,
//!   `PUSH mask; AND`, `PUSH 2^224; DIV`, constant-target `PUSH; JUMP[I]`,
//!   `DUP`/`SWAP` runs) become a single fused step, with jump targets
//!   resolved to block ids at compile time where statically known.
//!
//! Fusion never hides an instruction: a fused step *covers* its
//! constituents ([`Step::width`]), but every covered instruction keeps its
//! own plain step at its own pc. Control that jumps or falls into the
//! middle of a fused pair therefore executes exactly the per-instruction
//! semantics — fusion only accelerates paths that flow *through* the
//! pattern's first instruction, which is the invariant that keeps the
//! block engine bit-identical to the reference interpreter.

use crate::disasm::Disassembly;
use crate::opcode::Opcode;
use crate::u256::U256;

/// Sentinel in the `pc → step` table for bytes that are not an
/// instruction start (push immediates, or past the end of code).
pub const NO_STEP: u32 = u32::MAX;

/// Longest `DUP`/`SWAP` run folded into one [`StepKind::Shuffle`] step;
/// longer runs split into several shuffle steps.
pub const MAX_SHUFFLE: usize = 8;

/// Bit set in a [`StepKind::Shuffle`] op byte when the entry is a `SWAP`
/// (the low bits carry the 1-based depth `n`).
pub const SHUFFLE_SWAP: u8 = 0x80;

/// Statically resolved target of a constant `PUSH; JUMP`/`PUSH; JUMPI`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JumpTarget {
    /// The target is a `JUMPDEST`: jump to `pc` (the leader of block
    /// `block`).
    Valid {
        /// Target pc (a `JUMPDEST`).
        pc: usize,
        /// Block id of the target (its `JUMPDEST` is the block leader).
        block: u32,
    },
    /// Concrete but not a legal jump destination: taking the jump faults.
    Invalid,
    /// Does not fit in `usize` — executors treat it like a symbolic
    /// target (a concrete 2²⁵⁶-scale address can never be a jumpdest, but
    /// the reference interpreter classifies it as unresolvable).
    Huge,
}

/// What one pre-decoded step does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// A plain opcode, dispatched exactly like the reference interpreter
    /// (never `PUSH*` — pushes always pre-decode to [`StepKind::Push`]).
    Op(Opcode),
    /// `PUSH*` with its immediate already parsed (truncated trailing
    /// pushes are zero-filled at the low end, per EVM semantics).
    Push(U256),
    /// `PUSH value` immediately consumed as the top operand of `op`
    /// (a calldata load, a binary operation, or a shift).
    FusedPushOp {
        /// The pre-parsed immediate.
        value: U256,
        /// The consuming opcode.
        op: Opcode,
    },
    /// `PUSH target; JUMP` with the target resolved at compile time.
    FusedJump(JumpTarget),
    /// `PUSH target; JUMPI` with the target resolved at compile time
    /// (the condition still comes from the stack).
    FusedJumpI(JumpTarget),
    /// A run of consecutive `DUP`/`SWAP` instructions. `ops[..len]` holds
    /// one byte per constituent: depth `n` with [`SHUFFLE_SWAP`] set for
    /// swaps.
    Shuffle {
        /// Encoded constituents.
        ops: [u8; MAX_SHUFFLE],
        /// Number of constituents (≥ 2).
        len: u8,
    },
}

/// One pre-decoded execution step. Steps are indexed by instruction: the
/// step at index `i` corresponds to the `i`-th disassembled instruction,
/// and a fused step covering `width` instructions coexists with the plain
/// steps of the instructions it covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Step {
    /// pc of the first covered instruction.
    pub pc: usize,
    /// pc after the last covered instruction (nominal: a truncated
    /// trailing `PUSH` counts its missing immediate bytes, mirroring
    /// `Instruction::next_pc`).
    pub next_pc: usize,
    /// Block id of the first covered instruction.
    pub block: u32,
    /// Instructions covered (1 for plain steps, 2 for fused push pairs,
    /// the run length for shuffles).
    pub width: u8,
    /// The operation.
    pub kind: StepKind,
}

/// Static metadata of one basic block. Blocks are cut at `JUMPDEST`
/// instructions (leaders) and after `JUMP`/`JUMPI`/terminators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockInfo {
    /// pc of the block's first instruction.
    pub start_pc: usize,
    /// Index of the block's first step (= first instruction).
    pub first_step: u32,
    /// Number of instructions (= steps) in the block.
    pub len: u32,
    /// Net stack height change across the block.
    pub stack_delta: i32,
    /// Minimum stack depth required on entry for no instruction in the
    /// block to underflow.
    pub min_depth: u32,
    /// True when the block contains no `JUMP`/`JUMPI`/terminator —
    /// execution always falls through its end into the next leader.
    pub straight_line: bool,
}

/// A contract compiled for block-stepped execution. Compile once per
/// distinct bytecode ([`Program::compile`]), share via `Arc`.
#[derive(Clone, Debug, Default)]
pub struct Program {
    steps: Vec<Step>,
    blocks: Vec<BlockInfo>,
    /// `pc → step index`, [`NO_STEP`] for non-instruction bytes. Length is
    /// the real code length.
    pc_to_step: Vec<u32>,
    code_len: usize,
    /// Statically detected loop-head guards, `(guard pc, exit pc)` sorted
    /// by guard pc (see [`detect_loop_exits`]). Computed once per contract
    /// here instead of once per function explore.
    loop_exits: Vec<(usize, usize)>,
    /// Per-block flag: `true` when the block's steps carry the full
    /// pre-decode (parsed immediates, fusion, resolved jump targets).
    /// Blocks left `false` by [`Program::compile_reachable`] hold
    /// placeholder steps that executors must never dispatch — they fall
    /// back to reference per-instruction semantics instead. The cheap
    /// whole-program tables (`pc_to_step`, `blocks`, `is_jumpdest`) are
    /// always complete regardless of this mask.
    compiled: Vec<bool>,
}

/// Statically detects loop-head guards: a `JUMPI` whose constant forward
/// target `e` encloses (strictly between the guard and `e`) a constant
/// backward jump to at or before the guard. Returns `(guard pc, exit pc)`
/// pairs in ascending guard-pc order.
pub fn detect_loop_exits(disasm: &Disassembly) -> Vec<(usize, usize)> {
    let instrs = disasm.instructions();
    // Collect constant jumps: (jump pc, target, is JUMPI).
    let mut const_jumps = Vec::new();
    for (i, ins) in instrs.iter().enumerate() {
        if matches!(ins.opcode, Opcode::Jump | Opcode::JumpI) && i > 0 {
            if let Some(t) = instrs[i - 1].push_value().and_then(|v| v.as_usize()) {
                const_jumps.push((ins.pc, t, ins.opcode == Opcode::JumpI));
            }
        }
    }
    // Only backward jumps can close a loop, and real code has few of
    // them — scanning just those keeps this linear-ish on adversarial
    // dispatchers with thousands of forward guards.
    let back_jumps: Vec<(usize, usize)> = const_jumps
        .iter()
        .filter(|&&(j, t, _)| t <= j)
        .map(|&(j, t, _)| (j, t))
        .collect();
    let mut out = Vec::new();
    for &(g, e, is_jumpi) in &const_jumps {
        if e <= g || !is_jumpi {
            continue; // not a forward conditional guard
        }
        let has_back_edge = back_jumps.iter().any(|&(j, t)| j > g && j < e && t <= g);
        if has_back_edge {
            out.push((g, e));
        }
    }
    out
}

/// True for single-byte opcodes that can consume a preceding `PUSH` as
/// their top stack operand inside one fused step.
fn fuses_with_push(op: Opcode) -> bool {
    use Opcode::*;
    matches!(
        op,
        Add | Sub
            | Mul
            | Div
            | SDiv
            | Mod
            | SMod
            | Exp
            | And
            | Or
            | Xor
            | Lt
            | Gt
            | SLt
            | SGt
            | Eq
            | Shl
            | Shr
            | Sar
            | CallDataLoad
    )
}

impl Program {
    /// Compiles a disassembly. Total work is linear in the code size; the
    /// result depends only on the bytes, so one compile per distinct
    /// contract can be cached and shared across threads. Every block is
    /// fully pre-decoded ([`Program::block_compiled`] is `true` for all).
    pub fn compile(disasm: &Disassembly) -> Program {
        Self::build(disasm, None)
    }

    /// Compiles only the basic blocks statically reachable from `entries`
    /// (dispatcher function entry pcs; pc 0 is always included). The cheap
    /// linear passes — leaders, block metadata, the `pc → step` table,
    /// loop-exit detection — still cover the whole program, so
    /// `is_jumpdest` and `block_of` behave exactly like a full compile.
    /// Unreachable blocks skip immediate parsing, fusion, and jump-target
    /// resolution; their placeholder steps report
    /// [`Program::block_compiled`] `false` and executors dispatch them via
    /// reference per-instruction semantics. Reachability follows resolved
    /// constant jump targets, fallthrough edges, and every pushed constant
    /// that names a `JUMPDEST` (covering return-address pushes), so blocks
    /// this misses are only ever entered through computed jumps — which
    /// the executor fallback handles bit-identically.
    pub fn compile_reachable(disasm: &Disassembly, entries: &[usize]) -> Program {
        Self::build(disasm, Some(entries))
    }

    fn build(disasm: &Disassembly, entries: Option<&[usize]>) -> Program {
        let instrs = disasm.instructions();
        let n = instrs.len();
        let code_len = disasm.code_len();

        // Block leaders: the first instruction, every JUMPDEST, and every
        // instruction following a JUMP/JUMPI/terminator.
        let mut is_leader = vec![false; n];
        if n > 0 {
            is_leader[0] = true;
        }
        for (i, ins) in instrs.iter().enumerate() {
            if ins.opcode == Opcode::JumpDest {
                is_leader[i] = true;
            }
            if (ins.opcode.is_terminator() || ins.opcode == Opcode::JumpI) && i + 1 < n {
                is_leader[i + 1] = true;
            }
        }

        // Block ids per instruction plus per-block static metadata.
        let mut blocks: Vec<BlockInfo> = Vec::new();
        let mut block_of = vec![0u32; n];
        for (i, ins) in instrs.iter().enumerate() {
            if is_leader[i] {
                blocks.push(BlockInfo {
                    start_pc: ins.pc,
                    first_step: i as u32,
                    len: 0,
                    stack_delta: 0,
                    min_depth: 0,
                    straight_line: true,
                });
            }
            block_of[i] = (blocks.len() - 1) as u32;
            let b = blocks.last_mut().expect("instruction 0 is a leader");
            b.len += 1;
            // Entry-depth requirement: how far below the entry height the
            // running stack level would have to reach for this instruction
            // to underflow.
            let rel = b.stack_delta as i64;
            let need = ins.opcode.stack_in() as i64 - rel;
            if need > b.min_depth as i64 {
                b.min_depth = need as u32;
            }
            b.stack_delta += ins.opcode.stack_out() as i32 - ins.opcode.stack_in() as i32;
            if matches!(ins.opcode, Opcode::Jump | Opcode::JumpI) || ins.opcode.is_terminator() {
                b.straight_line = false;
            }
        }

        // O(1) pc → step table (step index == instruction index).
        let mut pc_to_step = vec![NO_STEP; code_len];
        for (i, ins) in instrs.iter().enumerate() {
            pc_to_step[ins.pc] = i as u32;
        }

        // Which blocks get the expensive pre-decode. A full compile takes
        // them all; a reachable compile BFSes the static CFG from the
        // entry pcs. Marking too much only costs decode time, marking too
        // little only costs a runtime fallback — never correctness.
        let compiled = match entries {
            None => vec![true; blocks.len()],
            Some(entries) => {
                let block_at = |pc: usize| -> Option<u32> {
                    match pc_to_step.get(pc) {
                        Some(&i) if i != NO_STEP => Some(block_of[i as usize]),
                        _ => None,
                    }
                };
                let mut mask = vec![false; blocks.len()];
                let mut work: Vec<u32> = Vec::new();
                for pc in entries.iter().copied().chain(std::iter::once(0)) {
                    if let Some(b) = block_at(pc) {
                        if !mask[b as usize] {
                            mask[b as usize] = true;
                            work.push(b);
                        }
                    }
                }
                while let Some(b) = work.pop() {
                    let info = &blocks[b as usize];
                    let first = info.first_step as usize;
                    let len = info.len as usize;
                    // Any pushed constant naming a JUMPDEST is a potential
                    // jump target (direct `PUSH; JUMP[I]`, or a return
                    // address pushed before calling an internal function).
                    for ins in &instrs[first..first + len] {
                        if !matches!(ins.opcode, Opcode::Push(_)) {
                            continue;
                        }
                        let Some(t) = ins.push_value().and_then(|v| v.as_usize()) else {
                            continue;
                        };
                        let Some(tb) = block_at(t) else { continue };
                        if instrs[pc_to_step[t] as usize].opcode == Opcode::JumpDest
                            && !mask[tb as usize]
                        {
                            mask[tb as usize] = true;
                            work.push(tb);
                        }
                    }
                    // Fallthrough into the next block unless the block
                    // ends in a no-fallthrough terminator (JUMPI and
                    // plain leader cuts both fall through).
                    let last = &instrs[first + len - 1];
                    let next = b + 1;
                    if !last.opcode.is_terminator()
                        && (next as usize) < blocks.len()
                        && !mask[next as usize]
                    {
                        mask[next as usize] = true;
                        work.push(next);
                    }
                }
                mask
            }
        };

        // Jump-target resolution needs the table and the opcode at the
        // target, so the fusion pass runs after both exist.
        let resolve = |value: U256| -> JumpTarget {
            let Some(t) = value.as_usize() else {
                return JumpTarget::Huge;
            };
            let idx = match pc_to_step.get(t) {
                Some(&i) if i != NO_STEP => i as usize,
                _ => return JumpTarget::Invalid,
            };
            if instrs[idx].opcode == Opcode::JumpDest {
                JumpTarget::Valid {
                    pc: t,
                    block: block_of[idx],
                }
            } else {
                JumpTarget::Invalid
            }
        };

        let mut steps = Vec::with_capacity(n);
        for (i, ins) in instrs.iter().enumerate() {
            if !compiled[block_of[i] as usize] {
                // Placeholder for an unreachable block: keeps pc/block
                // bookkeeping (and `is_jumpdest`, which only looks at
                // plain JUMPDEST steps) without paying immediate parsing
                // or fusion. Executors never dispatch these — the kind may
                // even be a bare `Op(Push(_))`, which a compiled block
                // would always pre-decode.
                steps.push(Step {
                    pc: ins.pc,
                    next_pc: ins.next_pc(),
                    block: block_of[i],
                    width: 1,
                    kind: StepKind::Op(ins.opcode),
                });
                continue;
            }
            let (kind, width) = match ins.opcode {
                Opcode::Push(_) => {
                    let value = ins.push_value().expect("push has an immediate");
                    match instrs.get(i + 1).map(|nx| nx.opcode) {
                        Some(Opcode::Jump) => (StepKind::FusedJump(resolve(value)), 2),
                        Some(Opcode::JumpI) => (StepKind::FusedJumpI(resolve(value)), 2),
                        Some(op) if fuses_with_push(op) => (StepKind::FusedPushOp { value, op }, 2),
                        _ => (StepKind::Push(value), 1),
                    }
                }
                Opcode::Dup(_) | Opcode::Swap(_) => {
                    let mut ops = [0u8; MAX_SHUFFLE];
                    let mut len = 0usize;
                    while len < MAX_SHUFFLE {
                        match instrs.get(i + len).map(|nx| nx.opcode) {
                            Some(Opcode::Dup(d)) => ops[len] = d,
                            Some(Opcode::Swap(s)) => ops[len] = s | SHUFFLE_SWAP,
                            _ => break,
                        }
                        len += 1;
                    }
                    if len >= 2 {
                        (
                            StepKind::Shuffle {
                                ops,
                                len: len as u8,
                            },
                            len,
                        )
                    } else {
                        (StepKind::Op(ins.opcode), 1)
                    }
                }
                op => (StepKind::Op(op), 1),
            };
            let last = &instrs[i + width - 1];
            steps.push(Step {
                pc: ins.pc,
                next_pc: last.next_pc(),
                block: block_of[i],
                width: width as u8,
                kind,
            });
        }

        Program {
            steps,
            blocks,
            pc_to_step,
            code_len,
            loop_exits: detect_loop_exits(disasm),
            compiled,
        }
    }

    /// Reassembles a program from persisted parts (the store's decoded
    /// segment payload). The `pc → step` table is rebuilt in O(steps)
    /// instead of being persisted. Returns `None` when the parts are
    /// inconsistent — out-of-range pcs or block ids, or a mask/bounds
    /// mismatch — so a corrupt-but-checksum-colliding payload can never
    /// produce a program that indexes out of bounds.
    pub fn from_parts(
        steps: Vec<Step>,
        blocks: Vec<BlockInfo>,
        code_len: usize,
        loop_exits: Vec<(usize, usize)>,
        compiled: Vec<bool>,
    ) -> Option<Program> {
        if compiled.len() != blocks.len() {
            return None;
        }
        for b in &blocks {
            let first = b.first_step as usize;
            if first + b.len as usize > steps.len() {
                return None;
            }
        }
        let mut pc_to_step = vec![NO_STEP; code_len];
        for (i, s) in steps.iter().enumerate() {
            let slot = pc_to_step.get_mut(s.pc)?;
            if *slot != NO_STEP || (s.block as usize) >= blocks.len() {
                return None;
            }
            *slot = i as u32;
        }
        Some(Program {
            steps,
            blocks,
            pc_to_step,
            code_len,
            loop_exits,
            compiled,
        })
    }

    /// The step starting at `pc`, or `None` for non-instruction bytes
    /// (inside a push immediate, or past the end of code). O(1).
    #[inline]
    pub fn step_at(&self, pc: usize) -> Option<&Step> {
        match self.pc_to_step.get(pc) {
            Some(&i) if i != NO_STEP => Some(&self.steps[i as usize]),
            _ => None,
        }
    }

    /// The step index (= instruction index) at `pc`, if any. O(1).
    #[inline]
    pub fn step_index(&self, pc: usize) -> Option<usize> {
        match self.pc_to_step.get(pc) {
            Some(&i) if i != NO_STEP => Some(i as usize),
            _ => None,
        }
    }

    /// True if `pc` holds a `JUMPDEST` instruction (not a data byte). O(1).
    #[inline]
    pub fn is_jumpdest(&self, pc: usize) -> bool {
        matches!(
            self.step_at(pc),
            Some(step) if matches!(step.kind, StepKind::Op(Opcode::JumpDest))
        )
    }

    /// The `(block id, offset-in-block)` of the instruction at `pc`. O(1).
    pub fn block_of(&self, pc: usize) -> Option<(u32, u32)> {
        let idx = self.step_index(pc)?;
        let block = self.steps[idx].block;
        Some((block, idx as u32 - self.blocks[block as usize].first_step))
    }

    /// All steps, in instruction order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// All basic blocks, in address order.
    pub fn blocks(&self) -> &[BlockInfo] {
        &self.blocks
    }

    /// Byte length of the compiled code.
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// Number of fused steps (width > 1) — a compile-quality metric the
    /// bench reports alongside the engine probe.
    pub fn fused_step_count(&self) -> usize {
        self.steps.iter().filter(|s| s.width > 1).count()
    }

    /// The statically detected loop-head guards, `(guard pc, exit pc)` in
    /// ascending guard-pc order (see [`detect_loop_exits`]).
    pub fn loop_exits(&self) -> &[(usize, usize)] {
        &self.loop_exits
    }

    /// True when block `block` carries the full pre-decode and its steps
    /// may be dispatched directly. `false` means the block holds
    /// placeholder steps ([`Program::compile_reachable`] skipped it) and
    /// the executor must fall back to reference per-instruction
    /// semantics. Out-of-range ids conservatively report `false`.
    #[inline]
    pub fn block_compiled(&self, block: u32) -> bool {
        self.compiled.get(block as usize).copied().unwrap_or(false)
    }

    /// Number of blocks carrying the full pre-decode.
    pub fn compiled_block_count(&self) -> usize {
        self.compiled.iter().filter(|&&c| c).count()
    }

    /// Number of blocks left as placeholders by lazy compilation.
    pub fn uncompiled_block_count(&self) -> usize {
        self.compiled.len() - self.compiled_block_count()
    }

    /// The per-block compile mask, indexed by block id (for persistence).
    pub fn compiled_mask(&self) -> &[bool] {
        &self.compiled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(code: &[u8]) -> Program {
        Program::compile(&Disassembly::new(code))
    }

    #[test]
    fn pc_table_skips_data_bytes() {
        // PUSH2 0x5b5b; STOP — the 0x5b immediate bytes are data, not
        // JUMPDESTs, and must not resolve to steps.
        let p = compile(&[0x61, 0x5b, 0x5b, 0x00]);
        assert!(p.step_at(0).is_some());
        assert!(p.step_at(1).is_none());
        assert!(p.step_at(2).is_none());
        assert!(p.step_at(3).is_some());
        assert!(p.step_at(4).is_none());
        assert!(!p.is_jumpdest(1));
        assert!(!p.is_jumpdest(2));
    }

    #[test]
    fn truncated_push_tail_compiles_to_one_block() {
        // JUMPDEST; PUSH4 with only 2 immediate bytes: the trailing push
        // keeps its nominal next_pc (5 + 1 + 4 = wait, pc 1 + 5 = 6) and
        // its value zero-fills the missing low bytes.
        let p = compile(&[0x5b, 0x63, 0xaa, 0xbb]);
        assert_eq!(p.steps().len(), 2);
        assert_eq!(p.code_len(), 4);
        let push = p.step_at(1).unwrap();
        assert_eq!(push.kind, StepKind::Push(U256::from(0xaabb_0000u64)));
        // Nominal next_pc runs past the code end, like Instruction::next_pc.
        assert_eq!(push.next_pc, 6);
        // One block, cut at the leading JUMPDEST.
        assert_eq!(p.blocks().len(), 1);
        assert_eq!(p.blocks()[0].len, 2);
        // The truncated push is the last instruction, so nothing fuses
        // with it.
        assert_eq!(push.width, 1);
    }

    #[test]
    fn blocks_cut_at_jumpdest_jumpi_and_terminators() {
        // PUSH1 6; JUMPI(cond from stack) | PUSH1 0; STOP | JUMPDEST; STOP
        let code = [0x60, 0x06, 0x57, 0x60, 0x00, 0x00, 0x5b, 0x00];
        let p = compile(&code);
        // Leaders: pc 0 (entry), pc 3 (after JUMPI), pc 6 (JUMPDEST).
        // The STOP at pc 5 ends block 1; its successor pc 6 is already a
        // leader, and the trailing STOP at pc 7 stays inside block 2.
        let starts: Vec<usize> = p.blocks().iter().map(|b| b.start_pc).collect();
        assert_eq!(starts, vec![0, 3, 6]);
        assert_eq!(p.block_of(0), Some((0, 0)));
        assert_eq!(p.block_of(2), Some((0, 1)));
        assert_eq!(p.block_of(3), Some((1, 0)));
        assert_eq!(p.block_of(6), Some((2, 0)));
        assert_eq!(p.block_of(7), Some((2, 1)));
    }

    #[test]
    fn block_metadata_delta_depth_straightline() {
        // Block: PUSH1 1; ADD; POP — consumes one entry-stack item (ADD
        // needs two, one comes from the push), nets -1.
        let p = compile(&[0x60, 0x01, 0x01, 0x50]);
        assert_eq!(p.blocks().len(), 1);
        let b = &p.blocks()[0];
        assert_eq!(b.stack_delta, -1);
        assert_eq!(b.min_depth, 1);
        assert!(b.straight_line);
        // A block ending in JUMP is not straight-line.
        let p = compile(&[0x5b, 0x60, 0x00, 0x56]);
        assert!(!p.blocks()[0].straight_line);
    }

    #[test]
    fn push_calldataload_fuses() {
        // PUSH1 4; CALLDATALOAD; STOP
        let p = compile(&[0x60, 0x04, 0x35, 0x00]);
        let s = p.step_at(0).unwrap();
        assert_eq!(
            s.kind,
            StepKind::FusedPushOp {
                value: U256::from(4u64),
                op: Opcode::CallDataLoad
            }
        );
        assert_eq!(s.width, 2);
        assert_eq!(s.next_pc, 3);
        // The covered CALLDATALOAD keeps its own plain step at its pc, so
        // entering mid-pair still executes per-instruction semantics.
        assert_eq!(
            p.step_at(2).unwrap().kind,
            StepKind::Op(Opcode::CallDataLoad)
        );
    }

    #[test]
    fn jump_targets_resolve_at_compile_time() {
        // PUSH1 4; JUMP; STOP; JUMPDEST; STOP
        let p = compile(&[0x60, 0x04, 0x56, 0x00, 0x5b, 0x00]);
        match p.step_at(0).unwrap().kind {
            StepKind::FusedJump(JumpTarget::Valid { pc, block }) => {
                assert_eq!(pc, 4);
                assert_eq!(p.blocks()[block as usize].start_pc, 4);
            }
            other => panic!("expected resolved jump, got {other:?}"),
        }
        // Target is not a JUMPDEST → compile-time Invalid.
        let p = compile(&[0x60, 0x03, 0x56, 0x00]);
        assert_eq!(
            p.step_at(0).unwrap().kind,
            StepKind::FusedJump(JumpTarget::Invalid)
        );
        // Data byte that looks like a JUMPDEST is still Invalid.
        let p = compile(&[0x60, 0x04, 0x56, 0x61, 0x5b, 0x00]);
        assert_eq!(
            p.step_at(0).unwrap().kind,
            StepKind::FusedJump(JumpTarget::Invalid)
        );
        // PUSH32 of a 2^256-scale target → Huge.
        let mut code = vec![0x7f];
        code.extend_from_slice(&[0xff; 32]);
        code.push(0x56);
        let p = compile(&code);
        assert_eq!(
            p.step_at(0).unwrap().kind,
            StepKind::FusedJump(JumpTarget::Huge)
        );
    }

    #[test]
    fn dup_swap_runs_shuffle() {
        // DUP1; DUP2; SWAP1; STOP
        let p = compile(&[0x80, 0x81, 0x90, 0x00]);
        match p.step_at(0).unwrap().kind {
            StepKind::Shuffle { ops, len } => {
                assert_eq!(len, 3);
                assert_eq!(ops[0], 1);
                assert_eq!(ops[1], 2);
                assert_eq!(ops[2], 1 | SHUFFLE_SWAP);
            }
            other => panic!("expected shuffle, got {other:?}"),
        }
        assert_eq!(p.step_at(0).unwrap().width, 3);
        // Entering mid-run sees the shorter tail run.
        match p.step_at(1).unwrap().kind {
            StepKind::Shuffle { len, .. } => assert_eq!(len, 2),
            other => panic!("expected tail shuffle, got {other:?}"),
        }
        // A lone DUP stays a plain op.
        let p = compile(&[0x80, 0x00]);
        assert_eq!(p.step_at(0).unwrap().kind, StepKind::Op(Opcode::Dup(1)));
    }

    #[test]
    fn empty_code_compiles_empty() {
        let p = compile(&[]);
        assert!(p.steps().is_empty());
        assert!(p.blocks().is_empty());
        assert_eq!(p.code_len(), 0);
        assert!(p.step_at(0).is_none());
    }

    #[test]
    fn fused_step_count_counts_width() {
        // PUSH 4; CALLDATALOAD fuses; the trailing STOP does not.
        let p = compile(&[0x60, 0x04, 0x35, 0x00]);
        assert_eq!(p.fused_step_count(), 1);
    }

    #[test]
    fn full_compile_marks_every_block_compiled() {
        let p = compile(&[0x60, 0x06, 0x57, 0x60, 0x00, 0x00, 0x5b, 0x00]);
        assert_eq!(p.compiled_block_count(), p.blocks().len());
        assert_eq!(p.uncompiled_block_count(), 0);
        for b in 0..p.blocks().len() as u32 {
            assert!(p.block_compiled(b));
        }
        // Out-of-range ids are conservatively uncompiled.
        assert!(!p.block_compiled(p.blocks().len() as u32));
    }

    #[test]
    fn reachable_compile_skips_dead_blocks_but_keeps_tables() {
        // PUSH1 6; JUMP | STOP | JUMPDEST; STOP | JUMPDEST; STOP
        // Only blocks 0 (entry) and 3 (jump target pc 6) are reachable.
        let code = [0x60, 0x06, 0x56, 0x00, 0x5b, 0x00, 0x5b, 0x00];
        let p = Program::compile_reachable(&Disassembly::new(&code), &[0]);
        assert_eq!(p.blocks().len(), 4);
        assert!(p.block_compiled(0));
        assert!(!p.block_compiled(1)); // dead STOP after the JUMP
        assert!(!p.block_compiled(2)); // JUMPDEST at 4, never named
        assert!(p.block_compiled(3));
        assert_eq!(p.compiled_block_count(), 2);
        assert_eq!(p.uncompiled_block_count(), 2);
        // The reachable jump still fuses and resolves.
        assert_eq!(
            p.step_at(0).unwrap().kind,
            StepKind::FusedJump(JumpTarget::Valid { pc: 6, block: 3 })
        );
        // Whole-program tables stay complete: the dead JUMPDEST is still
        // a legal jump destination and its block bookkeeping holds.
        assert!(p.is_jumpdest(4));
        assert_eq!(p.block_of(5), Some((2, 1)));
        assert_eq!(p.steps().len(), 7);
    }

    #[test]
    fn pushed_jumpdest_constants_count_as_reachable() {
        // PUSH1 4; STOP | STOP | JUMPDEST; STOP — the pushed 4 names a
        // JUMPDEST (a return-address idiom), so block 2 compiles even
        // though no static JUMP names it; the dead pc-3 STOP does not.
        let code = [0x60, 0x04, 0x00, 0x00, 0x5b, 0x00];
        let p = Program::compile_reachable(&Disassembly::new(&code), &[0]);
        assert!(p.block_compiled(0));
        assert!(!p.block_compiled(1));
        assert!(p.block_compiled(2));
    }

    #[test]
    fn entry_pcs_seed_reachability() {
        // STOP | JUMPDEST; STOP — pc 1 unreachable from pc 0, but listed
        // as a dispatcher entry.
        let code = [0x00, 0x5b, 0x00];
        let p = Program::compile_reachable(&Disassembly::new(&code), &[1]);
        assert!(p.block_compiled(0)); // pc 0 is always seeded
        assert!(p.block_compiled(1));
        let p = Program::compile_reachable(&Disassembly::new(&code), &[]);
        assert!(!p.block_compiled(1));
    }

    #[test]
    fn from_parts_round_trips_a_compiled_program() {
        let code = [
            0x60, 0x06, 0x57, 0x60, 0x00, 0x00, 0x5b, 0x60, 0x04, 0x35, 0x80, 0x81, 0x90, 0x00,
        ];
        let p = Program::compile_reachable(&Disassembly::new(&code), &[6]);
        let q = Program::from_parts(
            p.steps().to_vec(),
            p.blocks().to_vec(),
            p.code_len(),
            p.loop_exits().to_vec(),
            p.compiled_mask().to_vec(),
        )
        .expect("parts are consistent");
        assert_eq!(q.steps(), p.steps());
        assert_eq!(q.blocks(), p.blocks());
        assert_eq!(q.code_len(), p.code_len());
        assert_eq!(q.loop_exits(), p.loop_exits());
        assert_eq!(q.compiled_mask(), p.compiled_mask());
        // The rebuilt pc → step table answers identically at every byte.
        for pc in 0..=code.len() {
            assert_eq!(q.step_index(pc), p.step_index(pc));
            assert_eq!(q.is_jumpdest(pc), p.is_jumpdest(pc));
            assert_eq!(q.block_of(pc), p.block_of(pc));
        }
    }

    #[test]
    fn from_parts_rejects_inconsistent_parts() {
        let p = compile(&[0x60, 0x04, 0x56, 0x00, 0x5b, 0x00]);
        let parts = |f: &dyn Fn(&mut Vec<Step>, &mut Vec<bool>)| {
            let mut steps = p.steps().to_vec();
            let mut mask = p.compiled_mask().to_vec();
            f(&mut steps, &mut mask);
            Program::from_parts(steps, p.blocks().to_vec(), p.code_len(), Vec::new(), mask)
        };
        assert!(parts(&|_, _| {}).is_some());
        // Mask length must match the block count.
        assert!(parts(&|_, m| m.push(true)).is_none());
        // A step pc outside the code rebuilds no table slot.
        assert!(parts(&|s, _| s[0].pc = 99).is_none());
        // Two steps at one pc can't both own the slot.
        assert!(parts(&|s, _| s[1].pc = s[0].pc).is_none());
        // Block ids must index the block table.
        assert!(parts(&|s, _| s[0].block = 77).is_none());
        // A block spanning past the step array is rejected.
        let mut blocks = p.blocks().to_vec();
        blocks[0].len = 99;
        assert!(Program::from_parts(
            p.steps().to_vec(),
            blocks,
            p.code_len(),
            Vec::new(),
            p.compiled_mask().to_vec(),
        )
        .is_none());
    }
}
