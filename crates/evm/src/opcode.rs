//! The EVM instruction set.
//!
//! Every opcode of the (pre-Cancun) Ethereum virtual machine, with the
//! metadata SigRec's analyses need: mnemonic, stack arity (items consumed and
//! produced), and classification predicates (push, dup, swap, terminator,
//! calldata access, …).

use std::fmt;

/// An EVM opcode.
///
/// `PUSH1`–`PUSH32`, `DUP1`–`DUP16`, and `SWAP1`–`SWAP16` are folded into
/// parametrised variants; every other opcode is its own variant. Unassigned
/// byte values decode to [`Opcode::Invalid`] carrying the raw byte, so a
/// disassembly always round-trips.
///
/// Plain variants are the standard EVM mnemonics (see the Yellow Paper);
/// only the parametrised ones carry extra meaning and are documented.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum Opcode {
    Stop,
    Add,
    Mul,
    Sub,
    Div,
    SDiv,
    Mod,
    SMod,
    AddMod,
    MulMod,
    Exp,
    SignExtend,
    Lt,
    Gt,
    SLt,
    SGt,
    Eq,
    IsZero,
    And,
    Or,
    Xor,
    Not,
    Byte,
    Shl,
    Shr,
    Sar,
    Keccak256,
    Address,
    Balance,
    Origin,
    Caller,
    CallValue,
    CallDataLoad,
    CallDataSize,
    CallDataCopy,
    CodeSize,
    CodeCopy,
    GasPrice,
    ExtCodeSize,
    ExtCodeCopy,
    ReturnDataSize,
    ReturnDataCopy,
    ExtCodeHash,
    BlockHash,
    Coinbase,
    Timestamp,
    Number,
    Difficulty,
    GasLimit,
    ChainId,
    SelfBalance,
    BaseFee,
    Pop,
    MLoad,
    MStore,
    MStore8,
    SLoad,
    SStore,
    Jump,
    JumpI,
    Pc,
    MSize,
    Gas,
    JumpDest,
    /// `PUSH1`..=`PUSH32`; the payload is the number of immediate bytes (1–32).
    Push(u8),
    /// `DUP1`..=`DUP16`; the payload is the duplicated stack depth (1–16).
    Dup(u8),
    /// `SWAP1`..=`SWAP16`; the payload is the swapped stack depth (1–16).
    Swap(u8),
    /// `LOG0`..=`LOG4`; the payload is the topic count (0–4).
    Log(u8),
    Create,
    Call,
    CallCode,
    Return,
    DelegateCall,
    Create2,
    StaticCall,
    Revert,
    SelfDestruct,
    /// `0xfe` (designated invalid) or any unassigned byte value.
    Invalid(u8),
}

impl Opcode {
    /// Decodes a single byte into an opcode.
    pub fn from_byte(b: u8) -> Opcode {
        use Opcode::*;
        match b {
            0x00 => Stop,
            0x01 => Add,
            0x02 => Mul,
            0x03 => Sub,
            0x04 => Div,
            0x05 => SDiv,
            0x06 => Mod,
            0x07 => SMod,
            0x08 => AddMod,
            0x09 => MulMod,
            0x0a => Exp,
            0x0b => SignExtend,
            0x10 => Lt,
            0x11 => Gt,
            0x12 => SLt,
            0x13 => SGt,
            0x14 => Eq,
            0x15 => IsZero,
            0x16 => And,
            0x17 => Or,
            0x18 => Xor,
            0x19 => Not,
            0x1a => Byte,
            0x1b => Shl,
            0x1c => Shr,
            0x1d => Sar,
            0x20 => Keccak256,
            0x30 => Address,
            0x31 => Balance,
            0x32 => Origin,
            0x33 => Caller,
            0x34 => CallValue,
            0x35 => CallDataLoad,
            0x36 => CallDataSize,
            0x37 => CallDataCopy,
            0x38 => CodeSize,
            0x39 => CodeCopy,
            0x3a => GasPrice,
            0x3b => ExtCodeSize,
            0x3c => ExtCodeCopy,
            0x3d => ReturnDataSize,
            0x3e => ReturnDataCopy,
            0x3f => ExtCodeHash,
            0x40 => BlockHash,
            0x41 => Coinbase,
            0x42 => Timestamp,
            0x43 => Number,
            0x44 => Difficulty,
            0x45 => GasLimit,
            0x46 => ChainId,
            0x47 => SelfBalance,
            0x48 => BaseFee,
            0x50 => Pop,
            0x51 => MLoad,
            0x52 => MStore,
            0x53 => MStore8,
            0x54 => SLoad,
            0x55 => SStore,
            0x56 => Jump,
            0x57 => JumpI,
            0x58 => Pc,
            0x59 => MSize,
            0x5a => Gas,
            0x5b => JumpDest,
            0x60..=0x7f => Push(b - 0x5f),
            0x80..=0x8f => Dup(b - 0x7f),
            0x90..=0x9f => Swap(b - 0x8f),
            0xa0..=0xa4 => Log(b - 0xa0),
            0xf0 => Create,
            0xf1 => Call,
            0xf2 => CallCode,
            0xf3 => Return,
            0xf4 => DelegateCall,
            0xf5 => Create2,
            0xfa => StaticCall,
            0xfd => Revert,
            0xff => SelfDestruct,
            other => Invalid(other),
        }
    }

    /// Encodes the opcode back to its byte value.
    pub fn to_byte(self) -> u8 {
        use Opcode::*;
        match self {
            Stop => 0x00,
            Add => 0x01,
            Mul => 0x02,
            Sub => 0x03,
            Div => 0x04,
            SDiv => 0x05,
            Mod => 0x06,
            SMod => 0x07,
            AddMod => 0x08,
            MulMod => 0x09,
            Exp => 0x0a,
            SignExtend => 0x0b,
            Lt => 0x10,
            Gt => 0x11,
            SLt => 0x12,
            SGt => 0x13,
            Eq => 0x14,
            IsZero => 0x15,
            And => 0x16,
            Or => 0x17,
            Xor => 0x18,
            Not => 0x19,
            Byte => 0x1a,
            Shl => 0x1b,
            Shr => 0x1c,
            Sar => 0x1d,
            Keccak256 => 0x20,
            Address => 0x30,
            Balance => 0x31,
            Origin => 0x32,
            Caller => 0x33,
            CallValue => 0x34,
            CallDataLoad => 0x35,
            CallDataSize => 0x36,
            CallDataCopy => 0x37,
            CodeSize => 0x38,
            CodeCopy => 0x39,
            GasPrice => 0x3a,
            ExtCodeSize => 0x3b,
            ExtCodeCopy => 0x3c,
            ReturnDataSize => 0x3d,
            ReturnDataCopy => 0x3e,
            ExtCodeHash => 0x3f,
            BlockHash => 0x40,
            Coinbase => 0x41,
            Timestamp => 0x42,
            Number => 0x43,
            Difficulty => 0x44,
            GasLimit => 0x45,
            ChainId => 0x46,
            SelfBalance => 0x47,
            BaseFee => 0x48,
            Pop => 0x50,
            MLoad => 0x51,
            MStore => 0x52,
            MStore8 => 0x53,
            SLoad => 0x54,
            SStore => 0x55,
            Jump => 0x56,
            JumpI => 0x57,
            Pc => 0x58,
            MSize => 0x59,
            Gas => 0x5a,
            JumpDest => 0x5b,
            Push(n) => 0x5f + n,
            Dup(n) => 0x7f + n,
            Swap(n) => 0x8f + n,
            Log(n) => 0xa0 + n,
            Create => 0xf0,
            Call => 0xf1,
            CallCode => 0xf2,
            Return => 0xf3,
            DelegateCall => 0xf4,
            Create2 => 0xf5,
            StaticCall => 0xfa,
            Revert => 0xfd,
            SelfDestruct => 0xff,
            Invalid(b) => b,
        }
    }

    /// Number of immediate data bytes following this opcode in the bytecode
    /// (non-zero only for `PUSH1`–`PUSH32`).
    pub fn immediate_len(self) -> usize {
        match self {
            Opcode::Push(n) => n as usize,
            _ => 0,
        }
    }

    /// Stack items consumed.
    pub fn stack_in(self) -> usize {
        use Opcode::*;
        match self {
            Stop | Address | Origin | Caller | CallValue | CallDataSize | CodeSize | GasPrice
            | ReturnDataSize | Coinbase | Timestamp | Number | Difficulty | GasLimit | ChainId
            | SelfBalance | BaseFee | Pc | MSize | Gas | JumpDest | Push(_) | Invalid(_) => 0,
            IsZero | Not | Balance | CallDataLoad | ExtCodeSize | ExtCodeHash | BlockHash | Pop
            | MLoad | SLoad | Jump | SelfDestruct => 1,
            Add | Mul | Sub | Div | SDiv | Mod | SMod | Exp | SignExtend | Lt | Gt | SLt | SGt
            | Eq | And | Or | Xor | Byte | Shl | Shr | Sar | Keccak256 | MStore | MStore8
            | SStore | JumpI | Return | Revert => 2,
            AddMod | MulMod | CallDataCopy | CodeCopy | ReturnDataCopy | Create => 3,
            ExtCodeCopy | Create2 => 4,
            Log(n) => 2 + n as usize,
            Dup(n) => n as usize,
            Swap(n) => n as usize + 1,
            DelegateCall | StaticCall => 6,
            Call | CallCode => 7,
        }
    }

    /// Stack items produced.
    pub fn stack_out(self) -> usize {
        use Opcode::*;
        match self {
            Stop | Pop | MStore | MStore8 | SStore | Jump | JumpDest | Return | Revert
            | SelfDestruct | CallDataCopy | CodeCopy | ReturnDataCopy | ExtCodeCopy | Log(_)
            | JumpI | Invalid(_) => 0,
            Dup(n) => n as usize + 1,
            Swap(n) => n as usize + 1,
            _ => 1,
        }
    }

    /// True for instructions that end a basic block (no fallthrough).
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Opcode::Stop
                | Opcode::Jump
                | Opcode::Return
                | Opcode::Revert
                | Opcode::SelfDestruct
                | Opcode::Invalid(_)
        )
    }

    /// True for the two instructions that read the call data.
    pub fn reads_calldata(self) -> bool {
        matches!(self, Opcode::CallDataLoad | Opcode::CallDataCopy)
    }

    /// True for instructions whose result SigRec models as a free symbol
    /// (environment and chain-state reads).
    pub fn is_environment_read(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Address
                | Balance
                | Origin
                | Caller
                | CallValue
                | GasPrice
                | ExtCodeSize
                | ExtCodeHash
                | ReturnDataSize
                | BlockHash
                | Coinbase
                | Timestamp
                | Number
                | Difficulty
                | GasLimit
                | ChainId
                | SelfBalance
                | BaseFee
                | MSize
                | Gas
                | SLoad
                | Create
                | Create2
                | Call
                | CallCode
                | DelegateCall
                | StaticCall
                | Keccak256
        )
    }

    /// True for signed arithmetic/comparison instructions — the hint behind
    /// rules R13/R15 (a value fed to these is a signed integer).
    pub fn is_signed_op(self) -> bool {
        matches!(
            self,
            Opcode::SDiv | Opcode::SMod | Opcode::SLt | Opcode::SGt | Opcode::Sar
        )
    }

    /// The canonical mnemonic, e.g. `PUSH4`, `CALLDATALOAD`.
    pub fn mnemonic(self) -> String {
        use Opcode::*;
        match self {
            Push(n) => format!("PUSH{}", n),
            Dup(n) => format!("DUP{}", n),
            Swap(n) => format!("SWAP{}", n),
            Log(n) => format!("LOG{}", n),
            Invalid(b) => format!("INVALID(0x{:02x})", b),
            other => format!("{:?}", other).to_uppercase(),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip_all_values() {
        for b in 0u8..=255 {
            let op = Opcode::from_byte(b);
            assert_eq!(op.to_byte(), b, "round trip failed for 0x{:02x}", b);
        }
    }

    #[test]
    fn push_range() {
        assert_eq!(Opcode::from_byte(0x60), Opcode::Push(1));
        assert_eq!(Opcode::from_byte(0x7f), Opcode::Push(32));
        assert_eq!(Opcode::Push(4).immediate_len(), 4);
        assert_eq!(Opcode::Add.immediate_len(), 0);
    }

    #[test]
    fn dup_swap_arity() {
        assert_eq!(Opcode::Dup(1).stack_in(), 1);
        assert_eq!(Opcode::Dup(1).stack_out(), 2);
        assert_eq!(Opcode::Swap(3).stack_in(), 4);
        assert_eq!(Opcode::Swap(3).stack_out(), 4);
    }

    #[test]
    fn arity_known_cases() {
        assert_eq!(Opcode::Add.stack_in(), 2);
        assert_eq!(Opcode::Add.stack_out(), 1);
        assert_eq!(Opcode::CallDataCopy.stack_in(), 3);
        assert_eq!(Opcode::CallDataCopy.stack_out(), 0);
        assert_eq!(Opcode::Call.stack_in(), 7);
        assert_eq!(Opcode::StaticCall.stack_in(), 6);
        assert_eq!(Opcode::Log(4).stack_in(), 6);
    }

    #[test]
    fn classifications() {
        assert!(Opcode::Jump.is_terminator());
        assert!(!Opcode::JumpI.is_terminator());
        assert!(Opcode::CallDataLoad.reads_calldata());
        assert!(Opcode::Caller.is_environment_read());
        assert!(Opcode::SDiv.is_signed_op());
        assert!(!Opcode::Div.is_signed_op());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(Opcode::Push(4).mnemonic(), "PUSH4");
        assert_eq!(Opcode::CallDataLoad.mnemonic(), "CALLDATALOAD");
        assert_eq!(Opcode::JumpDest.mnemonic(), "JUMPDEST");
        assert_eq!(Opcode::Invalid(0xfe).mnemonic(), "INVALID(0xfe)");
    }
}
