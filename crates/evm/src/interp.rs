//! A concrete EVM interpreter.
//!
//! Gas-free, single-contract execution: enough of the EVM to run the
//! calldata-decoding prologues our code generators emit, drive the fuzzing
//! experiment (§6.2), and differential-test the generators against the ABI
//! encoder. External calls succeed vacuously; environment reads come from an
//! [`Env`] the caller controls.

use crate::disasm::Disassembly;
use crate::gas;
use crate::keccak::keccak256;
use crate::opcode::Opcode;
use crate::trace::{TraceStep, Tracer};
use crate::u256::U256;
use std::collections::BTreeMap;

/// Maximum EVM stack depth.
pub const STACK_LIMIT: usize = 1024;

/// Execution environment: the message and block context visible to the
/// contract.
#[derive(Clone, Debug)]
pub struct Env {
    /// The call data (selector + ABI-encoded arguments).
    pub calldata: Vec<u8>,
    /// `CALLVALUE`.
    pub callvalue: U256,
    /// `CALLER`.
    pub caller: U256,
    /// `ADDRESS` of the executing contract.
    pub address: U256,
    /// `ORIGIN`.
    pub origin: U256,
    /// `TIMESTAMP`.
    pub timestamp: U256,
    /// `NUMBER` (block height).
    pub block_number: U256,
}

impl Default for Env {
    fn default() -> Self {
        Env {
            calldata: Vec::new(),
            callvalue: U256::ZERO,
            caller: U256::from_hex("cafe000000000000000000000000000000000001").unwrap(),
            address: U256::from_hex("c0de000000000000000000000000000000000002").unwrap(),
            origin: U256::from_hex("cafe000000000000000000000000000000000001").unwrap(),
            timestamp: U256::from(1_700_000_000u64),
            block_number: U256::from(17_000_000u64),
        }
    }
}

impl Env {
    /// An environment with the given calldata and defaults elsewhere.
    pub fn with_calldata(calldata: Vec<u8>) -> Self {
        Env {
            calldata,
            ..Env::default()
        }
    }
}

/// How an execution ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// `STOP` or running off the end of the code.
    Stop,
    /// `RETURN` with the returned bytes.
    Return(Vec<u8>),
    /// `REVERT` with the revert payload.
    Revert(Vec<u8>),
    /// Exceptional halt: `INVALID`, bad jump destination, stack
    /// underflow/overflow. Solidity compiles `assert` to `INVALID`, so the
    /// fuzzer treats this outcome as a bug signal.
    InvalidHalt(HaltReason),
    /// The step budget ran out (infinite or very long loop).
    OutOfSteps,
    /// The gas limit (when set) was exhausted.
    OutOfGas,
}

/// Why an execution halted exceptionally.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HaltReason {
    /// Executed `INVALID` (0xfe) or an unassigned opcode.
    InvalidOpcode,
    /// `JUMP`/`JUMPI` to a non-`JUMPDEST` target.
    BadJumpDestination,
    /// Popped from an empty stack.
    StackUnderflow,
    /// Pushed past [`STACK_LIMIT`].
    StackOverflow,
}

/// The result of a contract execution.
#[derive(Clone, Debug)]
pub struct Execution {
    /// Terminal state.
    pub outcome: Outcome,
    /// Instructions executed.
    pub steps: usize,
    /// Storage after execution (only slots ever written).
    pub storage: BTreeMap<U256, U256>,
    /// Program counters of executed `INVALID` instructions (at most one —
    /// execution halts there — but kept as a list for uniform accounting).
    pub invalid_pcs: Vec<usize>,
    /// Every pc executed at least once, in first-visit order. Used as
    /// coverage feedback by the fuzzer.
    pub visited_pcs: Vec<usize>,
    /// Gas consumed (tracked whether or not a limit was set).
    pub gas_used: u64,
}

impl Execution {
    /// True if the run ended in an exceptional halt caused by `INVALID` —
    /// the fuzzing oracle for seeded bugs.
    pub fn hit_invalid(&self) -> bool {
        matches!(
            self.outcome,
            Outcome::InvalidHalt(HaltReason::InvalidOpcode)
        )
    }

    /// True if the run completed without exceptional halt or revert.
    pub fn succeeded(&self) -> bool {
        matches!(self.outcome, Outcome::Stop | Outcome::Return(_))
    }
}

/// A concrete EVM interpreter over one contract's runtime bytecode.
///
/// # Examples
///
/// ```
/// use sigrec_evm::{Interpreter, Env, Outcome};
///
/// // PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN
/// let code = [0x60, 0x2a, 0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3];
/// let exec = Interpreter::new(&code).run(&Env::default());
/// match exec.outcome {
///     Outcome::Return(data) => assert_eq!(data[31], 0x2a),
///     other => panic!("unexpected outcome {:?}", other),
/// }
/// ```
pub struct Interpreter {
    disasm: Disassembly,
    step_limit: usize,
    gas_limit: Option<u64>,
}

impl Interpreter {
    /// Creates an interpreter with the default step limit (1 M instructions)
    /// and no gas limit.
    pub fn new(code: &[u8]) -> Self {
        Interpreter {
            disasm: Disassembly::new(code),
            step_limit: 1_000_000,
            gas_limit: None,
        }
    }

    /// Overrides the instruction budget.
    pub fn with_step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self
    }

    /// Sets a gas limit (simplified Istanbul schedule; see [`crate::gas`]).
    pub fn with_gas_limit(mut self, limit: u64) -> Self {
        self.gas_limit = Some(limit);
        self
    }

    /// Runs the contract to completion under `env`.
    pub fn run(&self, env: &Env) -> Execution {
        Machine::new(&self.disasm, env, self.step_limit, self.gas_limit).run(None)
    }

    /// Runs the contract, reporting every executed instruction to `tracer`.
    pub fn run_traced(&self, env: &Env, tracer: &mut dyn Tracer) -> Execution {
        Machine::new(&self.disasm, env, self.step_limit, self.gas_limit).run(Some(tracer))
    }
}

struct Machine<'a> {
    disasm: &'a Disassembly,
    env: &'a Env,
    stack: Vec<U256>,
    memory: Vec<u8>,
    storage: BTreeMap<U256, U256>,
    steps: usize,
    step_limit: usize,
    visited: Vec<usize>,
    seen: std::collections::HashSet<usize>,
    gas_used: u64,
    gas_limit: Option<u64>,
}

enum Step {
    Continue(usize),
    Halt(Outcome),
}

impl<'a> Machine<'a> {
    fn new(
        disasm: &'a Disassembly,
        env: &'a Env,
        step_limit: usize,
        gas_limit: Option<u64>,
    ) -> Self {
        Machine {
            disasm,
            env,
            stack: Vec::with_capacity(64),
            memory: Vec::new(),
            storage: BTreeMap::new(),
            steps: 0,
            step_limit,
            visited: Vec::new(),
            seen: std::collections::HashSet::new(),
            gas_used: 0,
            gas_limit,
        }
    }

    /// Charges gas; true if the budget (when set) is exhausted.
    fn charge(&mut self, amount: u64) -> bool {
        self.gas_used = self.gas_used.saturating_add(amount);
        matches!(self.gas_limit, Some(limit) if self.gas_used > limit)
    }

    fn run(mut self, mut tracer: Option<&mut dyn Tracer>) -> Execution {
        let mut pc = 0usize;
        let mut invalid_pcs = Vec::new();
        let outcome = loop {
            if self.steps >= self.step_limit {
                break Outcome::OutOfSteps;
            }
            let Some(ins) = self.disasm.at(pc) else {
                // Running off the end (or into push data) is a STOP.
                break Outcome::Stop;
            };
            self.steps += 1;
            if self.charge(gas::static_cost(ins.opcode)) {
                break Outcome::OutOfGas;
            }
            if let Some(t) = tracer.as_deref_mut() {
                let top_n = self.stack.len().min(4);
                t.step(&TraceStep {
                    pc,
                    opcode: ins.opcode,
                    stack_depth: self.stack.len(),
                    stack_top: self.stack.iter().rev().take(top_n).copied().collect(),
                    gas_used: self.gas_used,
                });
            }
            if self.seen.insert(pc) {
                self.visited.push(pc);
            }
            if matches!(ins.opcode, Opcode::Invalid(_)) {
                invalid_pcs.push(pc);
            }
            match self.step(pc, ins.opcode, ins.push_value()) {
                Step::Continue(next) => pc = next,
                Step::Halt(outcome) => break outcome,
            }
        };
        Execution {
            outcome,
            steps: self.steps,
            storage: self.storage,
            invalid_pcs,
            visited_pcs: self.visited,
            gas_used: self.gas_used,
        }
    }

    fn pop(&mut self) -> Result<U256, HaltReason> {
        self.stack.pop().ok_or(HaltReason::StackUnderflow)
    }

    fn push(&mut self, v: U256) -> Result<(), HaltReason> {
        if self.stack.len() >= STACK_LIMIT {
            return Err(HaltReason::StackOverflow);
        }
        self.stack.push(v);
        Ok(())
    }

    fn mem_grow(&mut self, end: usize) {
        if end > self.memory.len() {
            // EVM memory grows in 32-byte words.
            let old_words = (self.memory.len() / 32) as u64;
            let new_len = end.div_ceil(32) * 32;
            let _ = self.charge(gas::memory_expansion_cost(old_words, (new_len / 32) as u64));
            self.memory.resize(new_len, 0);
        }
    }

    fn mem_read_word(&mut self, offset: usize) -> U256 {
        self.mem_grow(offset + 32);
        U256::from_be_bytes(&self.memory[offset..offset + 32])
    }

    fn mem_write_word(&mut self, offset: usize, value: U256) {
        self.mem_grow(offset + 32);
        self.memory[offset..offset + 32].copy_from_slice(&value.to_be_bytes());
    }

    fn mem_slice(&mut self, offset: usize, len: usize) -> &[u8] {
        self.mem_grow(offset + len);
        &self.memory[offset..offset + len]
    }

    fn calldata_word(&self, offset: U256) -> U256 {
        let mut buf = [0u8; 32];
        if let Some(off) = offset.as_usize() {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = self.env.calldata.get(off + i).copied().unwrap_or(0);
            }
        }
        U256::from_be_bytes(&buf)
    }

    fn step(&mut self, pc: usize, op: Opcode, push: Option<U256>) -> Step {
        use Opcode::*;
        let next = match self.disasm.at(pc) {
            Some(i) => i.next_pc(),
            None => pc + 1,
        };
        macro_rules! try_halt {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(r) => return Step::Halt(Outcome::InvalidHalt(r)),
                }
            };
        }
        macro_rules! binop {
            (|$a:ident, $b:ident| $body:expr) => {{
                let $a = try_halt!(self.pop());
                let $b = try_halt!(self.pop());
                try_halt!(self.push($body));
            }};
        }
        match op {
            Stop => return Step::Halt(Outcome::Stop),
            Add => binop!(|a, b| a + b),
            Mul => binop!(|a, b| a * b),
            Sub => binop!(|a, b| a - b),
            Div => binop!(|a, b| a / b),
            SDiv => binop!(|a, b| a.signed_div(b)),
            Mod => binop!(|a, b| a % b),
            SMod => binop!(|a, b| a.signed_rem(b)),
            AddMod => {
                let a = try_halt!(self.pop());
                let b = try_halt!(self.pop());
                let m = try_halt!(self.pop());
                try_halt!(self.push(a.add_mod(b, m)));
            }
            MulMod => {
                let a = try_halt!(self.pop());
                let b = try_halt!(self.pop());
                let m = try_halt!(self.pop());
                try_halt!(self.push(a.mul_mod(b, m)));
            }
            Exp => {
                let a = try_halt!(self.pop());
                let b = try_halt!(self.pop());
                let _ = self.charge(gas::exp_cost(b.bits().div_ceil(8) as u64));
                try_halt!(self.push(a.wrapping_pow(b)));
            }
            SignExtend => binop!(|a, b| b.sign_extend(a)),
            Lt => binop!(|a, b| if a < b { U256::ONE } else { U256::ZERO }),
            Gt => binop!(|a, b| if a > b { U256::ONE } else { U256::ZERO }),
            SLt => binop!(|a, b| if a.signed_cmp(&b).is_lt() {
                U256::ONE
            } else {
                U256::ZERO
            }),
            SGt => binop!(|a, b| if a.signed_cmp(&b).is_gt() {
                U256::ONE
            } else {
                U256::ZERO
            }),
            Eq => binop!(|a, b| if a == b { U256::ONE } else { U256::ZERO }),
            IsZero => {
                let a = try_halt!(self.pop());
                try_halt!(self.push(if a.is_zero() { U256::ONE } else { U256::ZERO }));
            }
            And => binop!(|a, b| a & b),
            Or => binop!(|a, b| a | b),
            Xor => binop!(|a, b| a ^ b),
            Not => {
                let a = try_halt!(self.pop());
                try_halt!(self.push(!a));
            }
            Byte => binop!(|a, b| b.byte(a)),
            Shl => binop!(|a, b| b << a),
            Shr => binop!(|a, b| b >> a),
            Sar => binop!(|a, b| b.sar(a)),
            Keccak256 => {
                let offset = try_halt!(self.pop());
                let len = try_halt!(self.pop());
                let (Some(o), Some(l)) = (offset.as_usize(), len.as_usize()) else {
                    return Step::Halt(Outcome::InvalidHalt(HaltReason::InvalidOpcode));
                };
                let _ = self.charge(gas::keccak_cost(l as u64));
                let data = self.mem_slice(o, l).to_vec();
                try_halt!(self.push(U256::from_be_bytes(&keccak256(&data))));
            }
            Address => try_halt!(self.push(self.env.address)),
            Balance | ExtCodeSize | ExtCodeHash | BlockHash => {
                try_halt!(self.pop());
                try_halt!(self.push(U256::ZERO));
            }
            Origin => try_halt!(self.push(self.env.origin)),
            Caller => try_halt!(self.push(self.env.caller)),
            CallValue => try_halt!(self.push(self.env.callvalue)),
            CallDataLoad => {
                let off = try_halt!(self.pop());
                let v = self.calldata_word(off);
                try_halt!(self.push(v));
            }
            CallDataSize => try_halt!(self.push(U256::from(self.env.calldata.len()))),
            CallDataCopy => {
                let dst = try_halt!(self.pop());
                let src = try_halt!(self.pop());
                let len = try_halt!(self.pop());
                let (Some(d), Some(l)) = (dst.as_usize(), len.as_usize()) else {
                    return Step::Halt(Outcome::InvalidHalt(HaltReason::InvalidOpcode));
                };
                let _ = self.charge(gas::copy_cost(l as u64));
                self.mem_grow(d + l);
                let s = src.as_usize();
                for i in 0..l {
                    let byte = s
                        .and_then(|s| self.env.calldata.get(s + i))
                        .copied()
                        .unwrap_or(0);
                    self.memory[d + i] = byte;
                }
            }
            CodeSize => try_halt!(self.push(U256::from(self.disasm.assemble().len()))),
            CodeCopy | ReturnDataCopy | ExtCodeCopy => {
                let pops = op.stack_in();
                for _ in 0..pops {
                    try_halt!(self.pop());
                }
            }
            GasPrice | ReturnDataSize | Coinbase | Difficulty | GasLimit | ChainId
            | SelfBalance | BaseFee => try_halt!(self.push(U256::ZERO)),
            Timestamp => try_halt!(self.push(self.env.timestamp)),
            Number => try_halt!(self.push(self.env.block_number)),
            Pop => {
                try_halt!(self.pop());
            }
            MLoad => {
                let off = try_halt!(self.pop());
                let Some(o) = off.as_usize() else {
                    return Step::Halt(Outcome::InvalidHalt(HaltReason::InvalidOpcode));
                };
                let v = self.mem_read_word(o);
                try_halt!(self.push(v));
            }
            MStore => {
                let off = try_halt!(self.pop());
                let val = try_halt!(self.pop());
                let Some(o) = off.as_usize() else {
                    return Step::Halt(Outcome::InvalidHalt(HaltReason::InvalidOpcode));
                };
                self.mem_write_word(o, val);
            }
            MStore8 => {
                let off = try_halt!(self.pop());
                let val = try_halt!(self.pop());
                let Some(o) = off.as_usize() else {
                    return Step::Halt(Outcome::InvalidHalt(HaltReason::InvalidOpcode));
                };
                self.mem_grow(o + 1);
                self.memory[o] = val.low_u64() as u8;
            }
            SLoad => {
                let key = try_halt!(self.pop());
                let v = self.storage.get(&key).copied().unwrap_or(U256::ZERO);
                try_halt!(self.push(v));
            }
            SStore => {
                let key = try_halt!(self.pop());
                let val = try_halt!(self.pop());
                self.storage.insert(key, val);
            }
            Jump => {
                let target = try_halt!(self.pop());
                return self.jump_to(target);
            }
            JumpI => {
                let target = try_halt!(self.pop());
                let cond = try_halt!(self.pop());
                if !cond.is_zero() {
                    return self.jump_to(target);
                }
            }
            Pc => try_halt!(self.push(U256::from(pc))),
            MSize => try_halt!(self.push(U256::from(self.memory.len()))),
            Gas => try_halt!(self.push(U256::from(u64::MAX))),
            JumpDest => {}
            Push(_) => try_halt!(self.push(push.unwrap_or(U256::ZERO))),
            Dup(n) => {
                let n = n as usize;
                if self.stack.len() < n {
                    return Step::Halt(Outcome::InvalidHalt(HaltReason::StackUnderflow));
                }
                let v = self.stack[self.stack.len() - n];
                try_halt!(self.push(v));
            }
            Swap(n) => {
                let n = n as usize;
                if self.stack.len() < n + 1 {
                    return Step::Halt(Outcome::InvalidHalt(HaltReason::StackUnderflow));
                }
                let top = self.stack.len() - 1;
                self.stack.swap(top, top - n);
            }
            Log(n) => {
                for _ in 0..(2 + n as usize) {
                    try_halt!(self.pop());
                }
            }
            Create | Create2 => {
                for _ in 0..op.stack_in() {
                    try_halt!(self.pop());
                }
                try_halt!(self.push(U256::ZERO));
            }
            Call | CallCode | DelegateCall | StaticCall => {
                for _ in 0..op.stack_in() {
                    try_halt!(self.pop());
                }
                // External calls succeed vacuously.
                try_halt!(self.push(U256::ONE));
            }
            Return => {
                let off = try_halt!(self.pop());
                let len = try_halt!(self.pop());
                let data = match (off.as_usize(), len.as_usize()) {
                    (Some(o), Some(l)) => self.mem_slice(o, l).to_vec(),
                    _ => Vec::new(),
                };
                return Step::Halt(Outcome::Return(data));
            }
            Revert => {
                let off = try_halt!(self.pop());
                let len = try_halt!(self.pop());
                let data = match (off.as_usize(), len.as_usize()) {
                    (Some(o), Some(l)) => self.mem_slice(o, l).to_vec(),
                    _ => Vec::new(),
                };
                return Step::Halt(Outcome::Revert(data));
            }
            SelfDestruct => {
                let _ = self.pop();
                return Step::Halt(Outcome::Stop);
            }
            Invalid(_) => {
                return Step::Halt(Outcome::InvalidHalt(HaltReason::InvalidOpcode));
            }
        }
        Step::Continue(next)
    }

    fn jump_to(&mut self, target: U256) -> Step {
        match target.as_usize() {
            Some(t) if self.disasm.is_jumpdest(t) => Step::Continue(t),
            _ => Step::Halt(Outcome::InvalidHalt(HaltReason::BadJumpDestination)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(code: &[u8], calldata: &[u8]) -> Execution {
        Interpreter::new(code).run(&Env::with_calldata(calldata.to_vec()))
    }

    #[test]
    fn arithmetic_and_return() {
        // PUSH1 2 PUSH1 3 MUL PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN
        let code = [
            0x60, 0x02, 0x60, 0x03, 0x02, 0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3,
        ];
        let e = run(&code, &[]);
        match e.outcome {
            Outcome::Return(d) => assert_eq!(U256::from_be_bytes(&d), U256::from(6u64)),
            o => panic!("{:?}", o),
        }
    }

    #[test]
    fn calldataload_reads_words() {
        // PUSH1 0 CALLDATALOAD PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN
        let code = [
            0x60, 0x00, 0x35, 0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3,
        ];
        let mut cd = vec![0u8; 32];
        cd[0] = 0xa9;
        cd[31] = 0x01;
        let e = run(&code, &cd);
        match e.outcome {
            Outcome::Return(d) => assert_eq!(d, cd),
            o => panic!("{:?}", o),
        }
    }

    #[test]
    fn calldataload_past_end_zero_fills() {
        let code = [
            0x60, 0x10, 0x35, 0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3,
        ];
        let e = run(&code, &[0xff; 16]);
        match e.outcome {
            Outcome::Return(d) => assert_eq!(d, vec![0u8; 32]),
            o => panic!("{:?}", o),
        }
    }

    #[test]
    fn calldatacopy_into_memory() {
        // CALLDATACOPY(dst=0, src=4, len=32) then return memory[0..32].
        let code = [
            0x60, 0x20, // len
            0x60, 0x04, // src
            0x60, 0x00, // dst
            0x37, // CALLDATACOPY
            0x60, 0x20, 0x60, 0x00, 0xf3,
        ];
        let mut cd = vec![0xaa; 4];
        cd.extend(std::iter::repeat_n(0x42, 32));
        let e = run(&code, &cd);
        match e.outcome {
            Outcome::Return(d) => assert_eq!(d, vec![0x42; 32]),
            o => panic!("{:?}", o),
        }
    }

    #[test]
    fn invalid_opcode_halts() {
        let code = [0xfe];
        let e = run(&code, &[]);
        assert!(e.hit_invalid());
        assert_eq!(e.invalid_pcs, vec![0]);
    }

    #[test]
    fn bad_jump_halts() {
        let code = [0x60, 0x01, 0x56]; // JUMP to pc1 (not a JUMPDEST)
        let e = run(&code, &[]);
        assert_eq!(
            e.outcome,
            Outcome::InvalidHalt(HaltReason::BadJumpDestination)
        );
    }

    #[test]
    fn conditional_jump_taken_and_not_taken() {
        // JUMPI over an INVALID: PUSH1 cond PUSH1 7 JUMPI INVALID STOP JUMPDEST STOP
        let mut code = vec![0x60, 0x01, 0x60, 0x07, 0x57, 0xfe, 0x00, 0x5b, 0x00];
        let taken = run(&code, &[]);
        assert_eq!(taken.outcome, Outcome::Stop);
        code[1] = 0x00; // cond = 0 → falls through into INVALID
        let fell = run(&code, &[]);
        assert!(fell.hit_invalid());
    }

    #[test]
    fn stack_underflow_detected() {
        let code = [0x01]; // ADD on empty stack
        let e = run(&code, &[]);
        assert_eq!(e.outcome, Outcome::InvalidHalt(HaltReason::StackUnderflow));
    }

    #[test]
    fn loop_hits_step_limit() {
        // JUMPDEST PUSH1 0 JUMP — infinite loop.
        let code = [0x5b, 0x60, 0x00, 0x56];
        let e = Interpreter::new(&code)
            .with_step_limit(100)
            .run(&Env::default());
        assert_eq!(e.outcome, Outcome::OutOfSteps);
    }

    #[test]
    fn storage_round_trip() {
        // SSTORE(5, 42); return SLOAD(5).
        let code = [
            0x60, 0x2a, 0x60, 0x05, 0x55, // SSTORE
            0x60, 0x05, 0x54, // SLOAD
            0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3,
        ];
        let e = run(&code, &[]);
        assert_eq!(e.storage.get(&U256::from(5u64)), Some(&U256::from(42u64)));
        match e.outcome {
            Outcome::Return(d) => assert_eq!(U256::from_be_bytes(&d), U256::from(42u64)),
            o => panic!("{:?}", o),
        }
    }

    #[test]
    fn keccak_opcode_hashes_memory() {
        // MSTORE8(0, 'a'); hash memory[0..1]; return it.
        let code = [
            0x60, 0x61, 0x60, 0x00, 0x53, // MSTORE8
            0x60, 0x01, 0x60, 0x00, 0x20, // KECCAK256(0,1)
            0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3,
        ];
        let e = run(&code, &[]);
        match e.outcome {
            Outcome::Return(d) => {
                assert_eq!(d.as_slice(), &keccak256(b"a"));
            }
            o => panic!("{:?}", o),
        }
    }

    #[test]
    fn revert_carries_payload() {
        // MSTORE8(0, 0x99); REVERT(0, 1)
        let code = [0x60, 0x99, 0x60, 0x00, 0x53, 0x60, 0x01, 0x60, 0x00, 0xfd];
        let e = run(&code, &[]);
        assert_eq!(e.outcome, Outcome::Revert(vec![0x99]));
        assert!(!e.succeeded());
    }

    #[test]
    fn signextend_and_sar_concrete() {
        // SIGNEXTEND(0, 0xff) == -1, then SAR(shift=8, value=-1) == -1.
        let code = [
            0x60, 0xff, 0x60, 0x00, 0x0b, // SIGNEXTEND
            0x60, 0x08, 0x1d, // PUSH shift, SAR
            0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3,
        ];
        let e = run(&code, &[]);
        match e.outcome {
            Outcome::Return(d) => assert_eq!(U256::from_be_bytes(&d), U256::MAX),
            o => panic!("{:?}", o),
        }
    }

    #[test]
    fn gas_tracked_without_limit() {
        let code = [0x60, 0x01, 0x60, 0x02, 0x01, 0x50, 0x00]; // 3+3+3+2+0
        let e = run(&code, &[]);
        assert_eq!(e.outcome, Outcome::Stop);
        assert_eq!(e.gas_used, 11);
    }

    #[test]
    fn gas_limit_halts_loop() {
        // Infinite loop: JUMPDEST PUSH1 0 JUMP.
        let code = [0x5b, 0x60, 0x00, 0x56];
        let e = Interpreter::new(&code)
            .with_gas_limit(10_000)
            .run(&Env::default());
        assert_eq!(e.outcome, Outcome::OutOfGas);
        assert!(e.gas_used >= 10_000);
    }

    #[test]
    fn memory_expansion_charged() {
        // MSTORE at a high offset: expansion dominates.
        let code = [0x60, 0x01, 0x61, 0x40, 0x00, 0x52, 0x00]; // MSTORE(0x4000, 1)
        let e = run(&code, &[]);
        // 0x4000+32 bytes = 513 words: 3·513 + 513²/512 = 1539 + 513 = 2052.
        assert!(e.gas_used > 2000, "gas {}", e.gas_used);
    }

    #[test]
    fn huge_copy_runs_out_of_gas() {
        // CALLDATACOPY(0, 0, 1MB) under a tight gas limit.
        let code = [
            0x62, 0x10, 0x00, 0x00, // len = 1 MiB
            0x60, 0x00, 0x60, 0x00, 0x37, 0x00,
        ];
        let e = Interpreter::new(&code)
            .with_gas_limit(50_000)
            .run(&Env::default());
        assert_eq!(e.outcome, Outcome::OutOfGas);
    }

    #[test]
    fn coverage_tracks_first_visit_order() {
        let code = [0x60, 0x01, 0x50, 0x00]; // PUSH1 1 POP STOP
        let e = run(&code, &[]);
        assert_eq!(e.visited_pcs, vec![0, 2, 3]);
    }
}
