//! Gas accounting (simplified Istanbul-era schedule).
//!
//! The interpreter is gas-free by default (recovery does not need gas),
//! but the fuzzing and traffic experiments benefit from realistic budgets:
//! a garbage `num` field that demands a gigantic copy runs out of gas on
//! the real chain, and here too when a limit is set.

use crate::opcode::Opcode;

/// Static cost of one opcode, excluding dynamic parts (memory expansion,
/// copy sizes, `EXP` exponent bytes, hashing words).
pub fn static_cost(op: Opcode) -> u64 {
    use Opcode::*;
    match op {
        Stop | Return | Revert => 0,
        JumpDest => 1,
        Address | Origin | Caller | CallValue | CallDataSize | CodeSize | GasPrice | Coinbase
        | Timestamp | Number | Difficulty | GasLimit | ChainId | ReturnDataSize | Pop | Pc
        | MSize | Gas | BaseFee => 2,
        Add | Sub | Not | Lt | Gt | SLt | SGt | Eq | IsZero | And | Or | Xor | Byte | Shl | Shr
        | Sar | CallDataLoad | MLoad | MStore | MStore8 | Push(_) | Dup(_) | Swap(_) => 3,
        Mul | Div | SDiv | Mod | SMod | SignExtend | SelfBalance => 5,
        AddMod | MulMod | Jump => 8,
        JumpI | Exp => 10,
        CallDataCopy | CodeCopy | ReturnDataCopy => 3,
        Keccak256 => 30,
        BlockHash => 20,
        Balance | ExtCodeSize | ExtCodeHash => 700,
        ExtCodeCopy => 700,
        SLoad => 800,
        SStore => 5_000,
        Log(n) => 375 + 375 * n as u64,
        Create | Create2 => 32_000,
        Call | CallCode | DelegateCall | StaticCall => 700,
        SelfDestruct => 5_000,
        Invalid(_) => 0,
    }
}

/// Cost of expanding memory from `old_words` to `new_words` 32-byte words:
/// `3·Δw + (new² − old²)/512`.
pub fn memory_expansion_cost(old_words: u64, new_words: u64) -> u64 {
    if new_words <= old_words {
        return 0;
    }
    let quad = |w: u64| w.saturating_mul(w) / 512;
    3 * (new_words - old_words) + (quad(new_words) - quad(old_words))
}

/// Per-word surcharge for copy operations (`CALLDATACOPY` etc.).
pub fn copy_cost(bytes: u64) -> u64 {
    3 * bytes.div_ceil(32)
}

/// Per-word surcharge for `KECCAK256`.
pub fn keccak_cost(bytes: u64) -> u64 {
    6 * bytes.div_ceil(32)
}

/// `EXP`'s per-exponent-byte surcharge.
pub fn exp_cost(exponent_bytes: u64) -> u64 {
    50 * exponent_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_sane() {
        assert_eq!(static_cost(Opcode::Stop), 0);
        assert_eq!(static_cost(Opcode::Add), 3);
        assert_eq!(static_cost(Opcode::Mul), 5);
        assert_eq!(static_cost(Opcode::SLoad), 800);
        assert_eq!(static_cost(Opcode::Log(2)), 375 * 3);
        assert_eq!(static_cost(Opcode::Push(32)), 3);
    }

    #[test]
    fn memory_expansion_matches_formula() {
        assert_eq!(memory_expansion_cost(0, 0), 0);
        assert_eq!(memory_expansion_cost(0, 1), 3);
        assert_eq!(memory_expansion_cost(1, 1), 0);
        // 0 → 1024 words (32 KiB): 3·1024 + 1024²/512 = 3072 + 2048.
        assert_eq!(memory_expansion_cost(0, 1024), 5120);
        // Expanding from 512 to 1024 costs the difference.
        assert_eq!(
            memory_expansion_cost(512, 1024),
            memory_expansion_cost(0, 1024) - memory_expansion_cost(0, 512)
        );
    }

    #[test]
    fn copy_and_keccak_round_up_to_words() {
        assert_eq!(copy_cost(1), 3);
        assert_eq!(copy_cost(32), 3);
        assert_eq!(copy_cost(33), 6);
        assert_eq!(keccak_cost(64), 12);
        assert_eq!(exp_cost(2), 100);
    }
}
