//! Basic-block recognition and control-flow graph construction.
//!
//! SigRec's front end splits the disassembly into basic blocks: a block
//! starts at code offset 0, at every `JUMPDEST`, and after every terminator
//! or `JUMPI`. Edges whose jump target is a constant push immediately
//! preceding the jump are resolved statically; other targets are resolved
//! during symbolic execution (or left symbolic if input-dependent).

use crate::disasm::{Disassembly, Instruction};
use crate::opcode::Opcode;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a basic block: the pc of its first instruction.
pub type BlockId = usize;

/// A maximal straight-line instruction sequence.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// pc of the first instruction (the block id).
    pub start: BlockId,
    /// Indices into the parent disassembly's instruction list.
    pub range: std::ops::Range<usize>,
    /// Statically-known successors (from constant jump targets and
    /// fallthrough). Symbolic jump targets contribute no entry here.
    pub successors: Vec<BlockId>,
    /// True if the block ends in `JUMP`/`JUMPI` whose target could not be
    /// resolved to a constant.
    pub has_symbolic_jump: bool,
}

/// A control-flow graph over a [`Disassembly`].
#[derive(Clone, Debug)]
pub struct Cfg {
    disasm: Disassembly,
    blocks: BTreeMap<BlockId, BasicBlock>,
}

impl Cfg {
    /// Builds the CFG of `code`.
    pub fn new(code: &[u8]) -> Self {
        let disasm = Disassembly::new(code);
        Self::from_disassembly(disasm)
    }

    /// Builds the CFG from an existing disassembly.
    pub fn from_disassembly(disasm: Disassembly) -> Self {
        let instrs = disasm.instructions();
        // Pass 1: find leaders.
        let mut leaders = std::collections::BTreeSet::new();
        if !instrs.is_empty() {
            leaders.insert(0usize);
        }
        for (i, ins) in instrs.iter().enumerate() {
            if ins.opcode == Opcode::JumpDest {
                leaders.insert(ins.pc);
            }
            if (ins.opcode.is_terminator() || ins.opcode == Opcode::JumpI) && i + 1 < instrs.len() {
                leaders.insert(instrs[i + 1].pc);
            }
        }
        // Pass 2: build blocks between consecutive leaders.
        let leader_list: Vec<usize> = leaders.iter().copied().collect();
        let mut blocks = BTreeMap::new();
        for (li, &start) in leader_list.iter().enumerate() {
            let start_idx = disasm
                .index_of(start)
                .expect("leader pc must be an instruction boundary");
            let end_idx = if li + 1 < leader_list.len() {
                disasm
                    .index_of(leader_list[li + 1])
                    .expect("leader pc must be an instruction boundary")
            } else {
                instrs.len()
            };
            let mut successors = Vec::new();
            let mut has_symbolic_jump = false;
            if end_idx > start_idx {
                let last = &instrs[end_idx - 1];
                match last.opcode {
                    Opcode::Jump => match constant_jump_target(instrs, end_idx - 1) {
                        Some(t) if disasm.is_jumpdest(t) => successors.push(t),
                        Some(_) => {}
                        None => has_symbolic_jump = true,
                    },
                    Opcode::JumpI => {
                        match constant_jump_target(instrs, end_idx - 1) {
                            Some(t) if disasm.is_jumpdest(t) => successors.push(t),
                            Some(_) => {}
                            None => has_symbolic_jump = true,
                        }
                        if end_idx < instrs.len() {
                            successors.push(instrs[end_idx].pc);
                        }
                    }
                    op if op.is_terminator() => {}
                    _ => {
                        // Fallthrough into the next leader.
                        if end_idx < instrs.len() {
                            successors.push(instrs[end_idx].pc);
                        }
                    }
                }
            }
            blocks.insert(
                start,
                BasicBlock {
                    start,
                    range: start_idx..end_idx,
                    successors,
                    has_symbolic_jump,
                },
            );
        }
        Cfg { disasm, blocks }
    }

    /// The underlying disassembly.
    pub fn disassembly(&self) -> &Disassembly {
        &self.disasm
    }

    /// All blocks in address order.
    pub fn blocks(&self) -> impl Iterator<Item = &BasicBlock> {
        self.blocks.values()
    }

    /// The block starting at `id`.
    pub fn block(&self, id: BlockId) -> Option<&BasicBlock> {
        self.blocks.get(&id)
    }

    /// The block *containing* the instruction at `pc`.
    pub fn block_containing(&self, pc: usize) -> Option<&BasicBlock> {
        let idx = self.disasm.index_of(pc)?;
        self.blocks.values().find(|b| b.range.contains(&idx))
    }

    /// Instructions of a block.
    pub fn block_instructions(&self, block: &BasicBlock) -> &[Instruction] {
        &self.disasm.instructions()[block.range.clone()]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the code was empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.blocks.values() {
            writeln!(f, "block {:#06x} -> {:?}", b.start, b.successors)?;
            for ins in self.block_instructions(b) {
                writeln!(f, "  {}", ins)?;
            }
        }
        Ok(())
    }
}

/// If `instrs[jump_idx]` is a JUMP/JUMPI directly preceded by a PUSH, returns
/// the pushed constant target.
fn constant_jump_target(instrs: &[Instruction], jump_idx: usize) -> Option<usize> {
    if jump_idx == 0 {
        return None;
    }
    let prev = &instrs[jump_idx - 1];
    prev.push_value()?.as_usize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// PUSH1 0x06 JUMP  STOP  JUMPDEST STOP
    const DIRECT_JUMP: &[u8] = &[0x60, 0x06, 0x56, 0x00, 0x00, 0x00, 0x5b, 0x00];

    #[test]
    fn splits_on_jumpdest_and_terminator() {
        // pc0: PUSH1 6; pc2: JUMP; pc3..5: STOPs (one block each, since STOP
        // terminates a block); pc6: JUMPDEST; pc7: STOP.
        let cfg = Cfg::new(DIRECT_JUMP);
        assert_eq!(cfg.len(), 5);
        let first = cfg.block(0).unwrap();
        assert_eq!(first.successors, vec![6]);
        assert!(!first.has_symbolic_jump);
    }

    #[test]
    fn jumpi_has_two_successors() {
        // PUSH1 cond PUSH1 0x07 JUMPI STOP STOP JUMPDEST STOP
        // (the jump target is pushed last, directly before JUMPI)
        let code = [0x60, 0x01, 0x60, 0x07, 0x57, 0x00, 0x00, 0x5b, 0x00];
        let cfg = Cfg::new(&code);
        let b = cfg.block(0).unwrap();
        assert!(b.successors.contains(&7), "jump target");
        assert!(b.successors.contains(&5), "fallthrough");
    }

    #[test]
    fn symbolic_jump_flagged() {
        // CALLDATALOAD JUMP — target unknown statically.
        let code = [0x60, 0x00, 0x35, 0x56, 0x5b, 0x00];
        let cfg = Cfg::new(&code);
        let b = cfg.block(0).unwrap();
        assert!(b.has_symbolic_jump);
        assert!(b.successors.is_empty());
    }

    #[test]
    fn jump_to_non_jumpdest_yields_no_edge() {
        // PUSH1 0x04 JUMP STOP STOP (pc4 is STOP, not JUMPDEST)
        let code = [0x60, 0x04, 0x56, 0x00, 0x00];
        let cfg = Cfg::new(&code);
        let b = cfg.block(0).unwrap();
        assert!(b.successors.is_empty());
        assert!(!b.has_symbolic_jump);
    }

    #[test]
    fn fallthrough_edge_into_jumpdest() {
        // PUSH1 1 POP JUMPDEST STOP — block 0 falls through into block at 3.
        let code = [0x60, 0x01, 0x50, 0x5b, 0x00];
        let cfg = Cfg::new(&code);
        assert_eq!(cfg.block(0).unwrap().successors, vec![3]);
    }

    #[test]
    fn block_containing_lookup() {
        let cfg = Cfg::new(DIRECT_JUMP);
        assert_eq!(cfg.block_containing(2).unwrap().start, 0);
        assert_eq!(cfg.block_containing(7).unwrap().start, 6);
    }
}
