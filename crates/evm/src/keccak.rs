//! Keccak-256 — the hash behind Ethereum function selectors.
//!
//! Implemented from scratch: the FIPS-202 Keccak-f[1600] permutation with the
//! *original* Keccak padding (`0x01 … 0x80`), which is what Ethereum uses
//! (not the NIST SHA-3 `0x06` domain byte). A function id is the first four
//! bytes of `keccak256(canonical_signature)`.

const ROUNDS: usize = 24;

const RC: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets, indexed `[x][y]` over the 5×5 lane grid.
const ROTC: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

fn keccak_f(state: &mut [[u64; 5]; 5]) {
    for &rc in RC.iter() {
        // θ
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = state[x][0] ^ state[x][1] ^ state[x][2] ^ state[x][3] ^ state[x][4];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for lane in &mut state[x] {
                *lane ^= d;
            }
        }
        // ρ and π
        let mut b = [[0u64; 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = state[x][y].rotate_left(ROTC[x][y]);
            }
        }
        // χ
        for x in 0..5 {
            for y in 0..5 {
                state[x][y] = b[x][y] ^ (!b[(x + 1) % 5][y] & b[(x + 2) % 5][y]);
            }
        }
        // ι
        state[0][0] ^= rc;
    }
}

/// Computes the Keccak-256 digest of `data`.
///
/// # Examples
///
/// ```
/// use sigrec_evm::keccak256;
///
/// let digest = keccak256(b"transfer(address,uint256)");
/// // The famous ERC-20 transfer selector:
/// assert_eq!(&digest[..4], &[0xa9, 0x05, 0x9c, 0xbb]);
/// ```
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    const RATE: usize = 136; // 1088-bit rate for 256-bit output
    let mut state = [[0u64; 5]; 5];

    // Absorb full blocks.
    let mut offset = 0;
    while data.len() - offset >= RATE {
        absorb_block(&mut state, &data[offset..offset + RATE]);
        keccak_f(&mut state);
        offset += RATE;
    }

    // Final padded block: Keccak pad10*1 with domain byte 0x01.
    let mut block = [0u8; RATE];
    let tail = &data[offset..];
    block[..tail.len()].copy_from_slice(tail);
    block[tail.len()] ^= 0x01;
    block[RATE - 1] ^= 0x80;
    absorb_block(&mut state, &block);
    keccak_f(&mut state);

    // Squeeze 32 bytes (little-endian lanes, x-major order).
    let mut out = [0u8; 32];
    for i in 0..4 {
        let lane = state[i % 5][i / 5];
        out[i * 8..i * 8 + 8].copy_from_slice(&lane.to_le_bytes());
    }
    out
}

fn absorb_block(state: &mut [[u64; 5]; 5], block: &[u8]) {
    for (i, chunk) in block.chunks_exact(8).enumerate() {
        let mut lane = [0u8; 8];
        lane.copy_from_slice(chunk);
        state[i % 5][i / 5] ^= u64::from_le_bytes(lane);
    }
}

/// Computes the 4-byte function selector of a canonical signature string,
/// e.g. `"transfer(address,uint256)"`.
pub fn selector(signature: &str) -> [u8; 4] {
    let d = keccak256(signature.as_bytes());
    [d[0], d[1], d[2], d[3]]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{:02x}", b)).collect()
    }

    #[test]
    fn empty_input_vector() {
        // Canonical Keccak-256("") test vector.
        assert_eq!(
            hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn short_ascii_vector() {
        assert_eq!(
            hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn exactly_one_rate_block() {
        // 136 bytes: forces the all-padding final block.
        let data = vec![0x61u8; 136];
        let d1 = keccak256(&data);
        // Compare against splitting the same input differently (sanity:
        // digest must be deterministic and distinct from 135/137 bytes).
        assert_eq!(d1, keccak256(&[0x61u8; 136]));
        assert_ne!(d1, keccak256(&[0x61u8; 135]));
        assert_ne!(d1, keccak256(&[0x61u8; 137]));
    }

    #[test]
    fn known_ethereum_selectors() {
        assert_eq!(
            selector("transfer(address,uint256)"),
            [0xa9, 0x05, 0x9c, 0xbb]
        );
        assert_eq!(selector("balanceOf(address)"), [0x70, 0xa0, 0x82, 0x31]);
        assert_eq!(
            selector("approve(address,uint256)"),
            [0x09, 0x5e, 0xa7, 0xb3]
        );
        assert_eq!(
            selector("transferFrom(address,address,uint256)"),
            [0x23, 0xb8, 0x72, 0xdd]
        );
        assert_eq!(selector("totalSupply()"), [0x18, 0x16, 0x0d, 0xdd]);
    }

    #[test]
    fn long_input_multi_block() {
        // Keccak-256 of 1 MiB of zeros must be stable across runs and differ
        // from nearby lengths.
        let big = vec![0u8; 1 << 20];
        assert_eq!(keccak256(&big), keccak256(&vec![0u8; 1 << 20]));
        assert_ne!(keccak256(&big), keccak256(&vec![0u8; (1 << 20) - 1]));
    }
}
