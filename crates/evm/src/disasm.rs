//! Linear-sweep disassembler for EVM runtime bytecode.
//!
//! EVM bytecode is a flat byte string; the only variable-length instructions
//! are `PUSH1`–`PUSH32`, whose immediate follows the opcode byte. The
//! disassembler performs a linear sweep (the strategy Geth's disassembler
//! uses, which SigRec builds on), producing one [`Instruction`] per opcode
//! with its program counter and any push immediate.

use crate::opcode::Opcode;
use crate::u256::U256;
use std::fmt;

/// One disassembled instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Instruction {
    /// Byte offset of the opcode within the bytecode.
    pub pc: usize,
    /// The decoded opcode.
    pub opcode: Opcode,
    /// Immediate bytes for `PUSH*` (empty otherwise). A `PUSH` whose
    /// immediate is truncated by the end of the code keeps the bytes that
    /// were present; the EVM zero-fills the remainder at execution time.
    pub immediate: Vec<u8>,
}

impl Instruction {
    /// The push immediate as a 256-bit word, or `None` for non-push
    /// instructions. A truncated trailing `PUSH` follows EVM semantics:
    /// code bytes past the end read as zero, so the *missing low* bytes
    /// are zero-filled (`PUSH4 aa bb <eof>` pushes `0xaabb0000`, not
    /// `0x0000aabb`).
    pub fn push_value(&self) -> Option<U256> {
        match self.opcode {
            Opcode::Push(n) => {
                let value = U256::from_be_bytes(&self.immediate);
                let missing = (n as usize).saturating_sub(self.immediate.len());
                Some(value << (8 * missing as u32))
            }
            _ => None,
        }
    }

    /// True if this is a `PUSH` whose immediate was cut short by the end
    /// of the code (the only instruction a linear sweep can truncate).
    pub fn is_truncated_push(&self) -> bool {
        matches!(self.opcode, Opcode::Push(n) if self.immediate.len() < n as usize)
    }

    /// Total encoded size in bytes (opcode + immediate).
    pub fn size(&self) -> usize {
        1 + self.opcode.immediate_len()
    }

    /// The pc of the next instruction in linear order.
    pub fn next_pc(&self) -> usize {
        self.pc + self.size()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}: {}", self.pc, self.opcode)?;
        if let Some(v) = self.push_value() {
            write!(f, " 0x{:x}", v)?;
        }
        Ok(())
    }
}

/// A disassembled program: instructions in address order with pc lookup.
#[derive(Clone, Debug, Default)]
pub struct Disassembly {
    instructions: Vec<Instruction>,
}

impl Disassembly {
    /// Disassembles runtime bytecode with a linear sweep.
    ///
    /// Never fails: unassigned bytes become [`Opcode::Invalid`] and a
    /// truncated trailing `PUSH` keeps whatever immediate bytes exist.
    pub fn new(code: &[u8]) -> Self {
        let mut instructions = Vec::new();
        let mut pc = 0;
        while pc < code.len() {
            let opcode = Opcode::from_byte(code[pc]);
            let imm_len = opcode.immediate_len();
            let end = (pc + 1 + imm_len).min(code.len());
            let immediate = code[pc + 1..end].to_vec();
            instructions.push(Instruction {
                pc,
                opcode,
                immediate,
            });
            pc += 1 + imm_len;
        }
        Disassembly { instructions }
    }

    /// The instructions in address order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Finds the instruction starting at `pc`, if any.
    pub fn at(&self, pc: usize) -> Option<&Instruction> {
        self.instructions
            .binary_search_by_key(&pc, |i| i.pc)
            .ok()
            .map(|idx| &self.instructions[idx])
    }

    /// Index (in [`Self::instructions`]) of the instruction at `pc`.
    pub fn index_of(&self, pc: usize) -> Option<usize> {
        self.instructions.binary_search_by_key(&pc, |i| i.pc).ok()
    }

    /// True if `pc` holds a `JUMPDEST` — the only legal jump target.
    pub fn is_jumpdest(&self, pc: usize) -> bool {
        matches!(self.at(pc), Some(i) if i.opcode == Opcode::JumpDest)
    }

    /// The byte length of the code that was disassembled (the sweep keeps
    /// truncated immediates, so this is the real input length, not the
    /// sum of nominal instruction sizes).
    pub fn code_len(&self) -> usize {
        self.instructions
            .last()
            .map(|i| i.pc + 1 + i.immediate.len())
            .unwrap_or(0)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True if the bytecode was empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Re-encodes the disassembly back to bytecode (inverse of [`Self::new`]).
    pub fn assemble(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for ins in &self.instructions {
            out.push(ins.opcode.to_byte());
            out.extend_from_slice(&ins.immediate);
        }
        out
    }
}

impl fmt::Display for Disassembly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ins in &self.instructions {
            writeln!(f, "{}", ins)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disassembles_push_and_simple_ops() {
        // PUSH1 0x80 PUSH1 0x40 MSTORE
        let code = [0x60, 0x80, 0x60, 0x40, 0x52];
        let d = Disassembly::new(&code);
        assert_eq!(d.len(), 3);
        assert_eq!(d.instructions()[0].opcode, Opcode::Push(1));
        assert_eq!(d.instructions()[0].push_value(), Some(U256::from(0x80u64)));
        assert_eq!(d.instructions()[1].pc, 2);
        assert_eq!(d.instructions()[2].opcode, Opcode::MStore);
    }

    #[test]
    fn truncated_push_keeps_partial_immediate() {
        // PUSH4 with only 2 immediate bytes present.
        let code = [0x63, 0xaa, 0xbb];
        let d = Disassembly::new(&code);
        assert_eq!(d.len(), 1);
        assert_eq!(d.instructions()[0].immediate, vec![0xaa, 0xbb]);
        assert!(d.instructions()[0].is_truncated_push());
        assert_eq!(d.code_len(), 3);
    }

    #[test]
    fn truncated_push_value_zero_fills_low_bytes() {
        // The EVM reads code bytes past the end as zero, so the missing
        // bytes sit at the *low* end of the word.
        let d = Disassembly::new(&[0x63, 0xaa, 0xbb]);
        assert_eq!(
            d.instructions()[0].push_value(),
            Some(U256::from(0xaabb_0000u64))
        );
        // PUSH32 with one byte present: value is byte << 248.
        let d = Disassembly::new(&[0x7f, 0x01]);
        assert_eq!(d.instructions()[0].push_value(), Some(U256::ONE << 248u32));
        // A complete push is unaffected.
        let d = Disassembly::new(&[0x63, 0xaa, 0xbb, 0xcc, 0xdd]);
        assert_eq!(
            d.instructions()[0].push_value(),
            Some(U256::from(0xaabb_ccddu64))
        );
        assert!(!d.instructions()[0].is_truncated_push());
    }

    #[test]
    fn push_data_not_decoded_as_instructions() {
        // PUSH2 0x5b5b: the 0x5b bytes are data, not JUMPDESTs.
        let code = [0x61, 0x5b, 0x5b, 0x00];
        let d = Disassembly::new(&code);
        assert_eq!(d.len(), 2);
        assert!(!d.is_jumpdest(1));
        assert!(!d.is_jumpdest(2));
    }

    #[test]
    fn pc_lookup() {
        let code = [0x60, 0x01, 0x5b, 0x00];
        let d = Disassembly::new(&code);
        assert!(d.at(0).is_some());
        assert!(d.at(1).is_none()); // inside push immediate
        assert!(d.is_jumpdest(2));
        assert_eq!(d.index_of(3), Some(2));
    }

    #[test]
    fn assemble_round_trip() {
        let code = [0x60, 0x80, 0x60, 0x40, 0x52, 0x5b, 0x35, 0x00];
        let d = Disassembly::new(&code);
        assert_eq!(d.assemble(), code);
    }

    #[test]
    fn display_format() {
        let code = [0x63, 0xa9, 0x05, 0x9c, 0xbb];
        let d = Disassembly::new(&code);
        assert_eq!(
            format!("{}", d.instructions()[0]),
            "0x0000: PUSH4 0xa9059cbb"
        );
    }

    #[test]
    fn empty_code() {
        let d = Disassembly::new(&[]);
        assert!(d.is_empty());
        assert_eq!(d.assemble(), Vec::<u8>::new());
    }
}
