//! 256-bit unsigned integer arithmetic matching EVM word semantics.
//!
//! The EVM operates on 256-bit words with wrapping unsigned arithmetic plus a
//! handful of signed operations (`SDIV`, `SMOD`, `SLT`, `SGT`, `SAR`,
//! `SIGNEXTEND`) defined over two's-complement interpretation of the same
//! words. [`U256`] implements all of them from scratch on four little-endian
//! `u64` limbs — no external big-integer crate.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Div, Mul, Not, Rem, Shl, Shr, Sub};

/// A 256-bit unsigned integer stored as four little-endian 64-bit limbs.
///
/// All arithmetic wraps modulo 2²⁵⁶, mirroring EVM semantics. Division and
/// remainder by zero yield zero (the EVM convention) rather than panicking.
///
/// # Examples
///
/// ```
/// use sigrec_evm::U256;
///
/// let a = U256::from(7u64);
/// let b = U256::from(3u64);
/// assert_eq!(a / b, U256::from(2u64));
/// assert_eq!(a % b, U256::from(1u64));
/// assert_eq!(U256::MAX + U256::ONE, U256::ZERO); // wrapping
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// The additive identity.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The largest representable value, 2²⁵⁶ − 1.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Creates a value from four little-endian limbs (`limbs[0]` is least
    /// significant).
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256(limbs)
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> [u64; 4] {
        self.0
    }

    /// Parses a big-endian byte slice of at most 32 bytes.
    ///
    /// Shorter slices are zero-extended on the left, matching how the EVM
    /// reads words.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > 32`.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 32, "U256::from_be_bytes: slice too long");
        let mut buf = [0u8; 32];
        buf[32 - bytes.len()..].copy_from_slice(bytes);
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let start = 32 - (i + 1) * 8;
            let mut v = [0u8; 8];
            v.copy_from_slice(&buf[start..start + 8]);
            *limb = u64::from_be_bytes(v);
        }
        U256(limbs)
    }

    /// Serialises to 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            let start = 32 - (i + 1) * 8;
            out[start..start + 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Parses a hexadecimal string, with or without a `0x` prefix.
    ///
    /// Returns `None` on invalid characters or if the value needs more than
    /// 64 hex digits.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() || s.len() > 64 {
            return None;
        }
        let mut v = U256::ZERO;
        for c in s.chars() {
            let d = c.to_digit(16)? as u64;
            v = (v << 4) | U256::from(d);
        }
        Some(v)
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Returns the number of significant bits (0 for zero).
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return (i as u32) * 64 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Returns the value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: u32) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Returns `self` as `u64` if it fits, else `None`.
    pub fn as_u64(&self) -> Option<u64> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Returns `self` as `usize` if it fits, else `None`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Truncates to the low 64 bits.
    pub fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// Wrapping addition; also returns the carry-out flag.
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for (i, limb) in out.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            *limb = s2;
            carry = c1 | c2;
        }
        (U256(out), carry)
    }

    /// Wrapping subtraction; also returns the borrow-out flag.
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for (i, limb) in out.iter_mut().enumerate() {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            *limb = d2;
            borrow = b1 | b2;
        }
        (U256(out), borrow)
    }

    /// Wrapping multiplication modulo 2²⁵⁶.
    pub fn wrapping_mul(self, rhs: U256) -> U256 {
        let mut out = [0u64; 4];
        for i in 0..4 {
            if self.0[i] == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for j in 0..4 - i {
                let t = out[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
        }
        U256(out)
    }

    /// Checked multiplication: `None` on overflow past 2²⁵⁶.
    pub fn checked_mul(self, rhs: U256) -> Option<U256> {
        let mut prod = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let t = prod[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                prod[i + j] = t as u64;
                carry = t >> 64;
            }
            prod[i + 4] = carry as u64;
        }
        if prod[4..].iter().any(|&l| l != 0) {
            None
        } else {
            Some(U256([prod[0], prod[1], prod[2], prod[3]]))
        }
    }

    /// Simultaneous quotient and remainder. Division by zero yields
    /// `(0, 0)`, matching the EVM's `DIV`/`MOD` convention.
    pub fn div_rem(self, rhs: U256) -> (U256, U256) {
        if rhs.is_zero() {
            return (U256::ZERO, U256::ZERO);
        }
        if self < rhs {
            return (U256::ZERO, self);
        }
        if rhs.0[1] == 0 && rhs.0[2] == 0 && rhs.0[3] == 0 {
            let (q, r) = self.div_rem_u64(rhs.0[0]);
            return (q, U256::from(r));
        }
        // Bit-by-bit long division for the general case.
        let mut quotient = U256::ZERO;
        let mut remainder = U256::ZERO;
        let n = self.bits();
        for i in (0..n).rev() {
            remainder = remainder << 1;
            if self.bit(i) {
                remainder.0[0] |= 1;
            }
            if remainder >= rhs {
                remainder = remainder - rhs;
                quotient.0[(i / 64) as usize] |= 1 << (i % 64);
            }
        }
        (quotient, remainder)
    }

    fn div_rem_u64(self, rhs: u64) -> (U256, u64) {
        let mut out = [0u64; 4];
        let mut rem: u128 = 0;
        for i in (0..4).rev() {
            let cur = (rem << 64) | self.0[i] as u128;
            out[i] = (cur / rhs as u128) as u64;
            rem = cur % rhs as u128;
        }
        (U256(out), rem as u64)
    }

    /// EVM `EXP`: wrapping exponentiation by squaring.
    pub fn wrapping_pow(self, mut exp: U256) -> U256 {
        let mut base = self;
        let mut acc = U256::ONE;
        while !exp.is_zero() {
            if exp.bit(0) {
                acc = acc.wrapping_mul(base);
            }
            base = base.wrapping_mul(base);
            exp = exp >> 1;
        }
        acc
    }

    /// Interprets `self` as two's complement: is the sign bit set?
    pub fn is_negative(&self) -> bool {
        self.bit(255)
    }

    /// Two's-complement negation.
    pub fn wrapping_neg(self) -> U256 {
        (!self).overflowing_add(U256::ONE).0
    }

    /// Signed comparison over the two's-complement interpretation
    /// (EVM `SLT`/`SGT`).
    pub fn signed_cmp(&self, other: &U256) -> Ordering {
        match (self.is_negative(), other.is_negative()) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            _ => self.cmp(other),
        }
    }

    /// EVM `SDIV`: signed division, truncating toward zero.
    /// `i256::MIN / -1` wraps to `i256::MIN`; division by zero is zero.
    pub fn signed_div(self, rhs: U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let min = U256::ONE << 255u32;
        if self == min && rhs == U256::MAX {
            return min;
        }
        let (neg_a, a) = if self.is_negative() {
            (true, self.wrapping_neg())
        } else {
            (false, self)
        };
        let (neg_b, b) = if rhs.is_negative() {
            (true, rhs.wrapping_neg())
        } else {
            (false, rhs)
        };
        let q = a / b;
        if neg_a ^ neg_b {
            q.wrapping_neg()
        } else {
            q
        }
    }

    /// EVM `SMOD`: signed remainder, result takes the dividend's sign.
    pub fn signed_rem(self, rhs: U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let (neg_a, a) = if self.is_negative() {
            (true, self.wrapping_neg())
        } else {
            (false, self)
        };
        let b = if rhs.is_negative() {
            rhs.wrapping_neg()
        } else {
            rhs
        };
        let r = a % b;
        if neg_a {
            r.wrapping_neg()
        } else {
            r
        }
    }

    /// EVM `SAR`: arithmetic right shift preserving the sign bit.
    pub fn sar(self, shift: U256) -> U256 {
        let neg = self.is_negative();
        let s = match shift.as_u64() {
            Some(s) if s < 256 => s as u32,
            _ => return if neg { U256::MAX } else { U256::ZERO },
        };
        if s == 0 {
            return self;
        }
        let logical = self >> s;
        if neg {
            // Fill vacated high bits with ones.
            logical | (U256::MAX << (256 - s))
        } else {
            logical
        }
    }

    /// EVM `SIGNEXTEND`: extends the sign of the value in the low
    /// `byte_index + 1` bytes across the full word. If `byte_index >= 31`
    /// the value is returned unchanged.
    pub fn sign_extend(self, byte_index: U256) -> U256 {
        let b = match byte_index.as_u64() {
            Some(b) if b < 31 => b as u32,
            _ => return self,
        };
        let sign_bit = 8 * b + 7;
        if self.bit(sign_bit) {
            self | (U256::MAX << (sign_bit + 1))
        } else {
            self & !(U256::MAX << (sign_bit + 1))
        }
    }

    /// EVM `BYTE`: the `i`-th byte of the word counted from the *most*
    /// significant end (index 0 = most significant byte). Out-of-range
    /// indices yield zero.
    pub fn byte(self, index: U256) -> U256 {
        match index.as_u64() {
            Some(i) if i < 32 => U256::from(self.to_be_bytes()[i as usize] as u64),
            _ => U256::ZERO,
        }
    }

    /// EVM `ADDMOD`: `(self + rhs) % modulus` computed without intermediate
    /// overflow; zero modulus yields zero.
    pub fn add_mod(self, rhs: U256, modulus: U256) -> U256 {
        if modulus.is_zero() {
            return U256::ZERO;
        }
        let a = self % modulus;
        let b = rhs % modulus;
        let (sum, carry) = a.overflowing_add(b);
        if carry || sum >= modulus {
            // The true sum is sum + 2^256*carry; subtracting the modulus once
            // is enough since a,b < modulus <= 2^256-1.
            sum.overflowing_sub(modulus).0
        } else {
            sum
        }
    }

    /// EVM `MULMOD`: `(self * rhs) % modulus` over the full 512-bit product;
    /// zero modulus yields zero.
    pub fn mul_mod(self, rhs: U256, modulus: U256) -> U256 {
        if modulus.is_zero() {
            return U256::ZERO;
        }
        // Schoolbook 512-bit product in 8 limbs, then long division by modulus.
        let mut prod = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let t = prod[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                prod[i + j] = t as u64;
                carry = t >> 64;
            }
            prod[i + 4] = carry as u64;
        }
        // Bitwise modular reduction of the 512-bit product.
        let mut rem = U256::ZERO;
        for i in (0..512).rev() {
            let bit = (prod[i / 64] >> (i % 64)) & 1 == 1;
            let overflow = rem.bit(255);
            rem = rem << 1;
            if bit {
                rem.0[0] |= 1;
            }
            if overflow || rem >= modulus {
                rem = rem.overflowing_sub(modulus).0;
            }
        }
        rem
    }

    /// A mask with the low `bits` bits set (`bits >= 256` gives [`U256::MAX`]).
    pub fn low_mask(bits: u32) -> U256 {
        if bits >= 256 {
            U256::MAX
        } else if bits == 0 {
            U256::ZERO
        } else {
            (U256::ONE << bits).overflowing_sub(U256::ONE).0
        }
    }

    /// A mask with the high `bits` bits set.
    pub fn high_mask(bits: u32) -> U256 {
        !U256::low_mask(256 - bits.min(256))
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }
}

impl From<u32> for U256 {
    fn from(v: u32) -> Self {
        U256::from(v as u64)
    }
}

impl From<usize> for U256 {
    fn from(v: usize) -> Self {
        U256::from(v as u64)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }
}

impl From<i64> for U256 {
    /// Sign-extends negative values into two's-complement 256-bit form.
    fn from(v: i64) -> Self {
        if v >= 0 {
            U256::from(v as u64)
        } else {
            U256::from((-v) as u64).wrapping_neg()
        }
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for U256 {
    type Output = U256;
    fn add(self, rhs: U256) -> U256 {
        self.overflowing_add(rhs).0
    }
}

impl Sub for U256 {
    type Output = U256;
    fn sub(self, rhs: U256) -> U256 {
        self.overflowing_sub(rhs).0
    }
}

impl Mul for U256 {
    type Output = U256;
    fn mul(self, rhs: U256) -> U256 {
        self.wrapping_mul(rhs)
    }
}

impl Div for U256 {
    type Output = U256;
    fn div(self, rhs: U256) -> U256 {
        self.div_rem(rhs).0
    }
}

impl Rem for U256 {
    type Output = U256;
    fn rem(self, rhs: U256) -> U256 {
        self.div_rem(rhs).1
    }
}

impl Not for U256 {
    type Output = U256;
    fn not(self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl Shl<u32> for U256 {
    type Output = U256;
    fn shl(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            out[i] = self.0[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                out[i] |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
            }
        }
        U256(out)
    }
}

impl Shr<u32> for U256 {
    type Output = U256;
    fn shr(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for (i, limb) in out.iter_mut().enumerate().take(4 - limb_shift) {
            *limb = self.0[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < 4 {
                *limb |= self.0[i + limb_shift + 1] << (64 - bit_shift);
            }
        }
        U256(out)
    }
}

impl Shl<U256> for U256 {
    type Output = U256;
    fn shl(self, shift: U256) -> U256 {
        match shift.as_u64() {
            Some(s) if s < 256 => self << (s as u32),
            _ => U256::ZERO,
        }
    }
}

impl Shr<U256> for U256 {
    type Output = U256;
    fn shr(self, shift: U256) -> U256 {
        match shift.as_u64() {
            Some(s) if s < 256 => self >> (s as u32),
            _ => U256::ZERO,
        }
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{:x})", self)
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^19 (largest power of ten in a u64).
        let mut digits = Vec::new();
        let mut v = *self;
        while !v.is_zero() {
            let (q, r) = v.div_rem_u64(10_000_000_000_000_000_000);
            v = q;
            if v.is_zero() {
                digits.push(format!("{}", r));
            } else {
                digits.push(format!("{:019}", r));
            }
        }
        digits.reverse();
        write!(f, "{}", digits.concat())
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut started = false;
        for i in (0..4).rev() {
            if started {
                write!(f, "{:016x}", self.0[i])?;
            } else if self.0[i] != 0 {
                write!(f, "{:x}", self.0[i])?;
                started = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from(v)
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = U256([u64::MAX, 0, 0, 0]);
        assert_eq!(a + U256::ONE, U256([0, 1, 0, 0]));
    }

    #[test]
    fn add_wraps_at_max() {
        assert_eq!(U256::MAX + U256::ONE, U256::ZERO);
        let (_, carry) = U256::MAX.overflowing_add(U256::ONE);
        assert!(carry);
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = U256([0, 1, 0, 0]);
        assert_eq!(a - U256::ONE, U256([u64::MAX, 0, 0, 0]));
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(U256::ZERO - U256::ONE, U256::MAX);
    }

    #[test]
    fn mul_basic_and_cross_limb() {
        assert_eq!(u(1u64 << 32) * u(1u64 << 32), U256([0, 1, 0, 0]));
        assert_eq!(u(12345) * u(67890), u(12345 * 67890));
    }

    #[test]
    fn mul_wraps() {
        let big = U256::ONE << 255u32;
        assert_eq!(big * u(2), U256::ZERO);
    }

    #[test]
    fn div_rem_small_divisor() {
        let a = U256::from_hex("123456789abcdef0123456789abcdef0").unwrap();
        let (q, r) = a.div_rem(u(1000));
        assert_eq!(q * u(1000) + r, a);
        assert!(r < u(1000));
    }

    #[test]
    fn div_rem_large_divisor() {
        let a = U256::MAX;
        let b = U256::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        let (q, r) = a.div_rem(b);
        assert_eq!(q * b + r, a);
        assert!(r < b);
    }

    #[test]
    fn div_by_zero_is_zero() {
        assert_eq!(u(5) / U256::ZERO, U256::ZERO);
        assert_eq!(u(5) % U256::ZERO, U256::ZERO);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        assert_eq!(u(3).wrapping_pow(u(7)), u(2187));
        assert_eq!(u(2).wrapping_pow(u(256)), U256::ZERO);
        assert_eq!(u(2).wrapping_pow(u(255)), U256::ONE << 255u32);
    }

    #[test]
    fn shifts() {
        let one = U256::ONE;
        assert_eq!((one << 64u32).limbs(), [0, 1, 0, 0]);
        assert_eq!((one << 255u32) >> 255u32, one);
        assert_eq!(one << 256u32, U256::ZERO);
        let v = U256::from_hex("ff00000000000000000000000000000000000000000000000000000000000000")
            .unwrap();
        assert_eq!(v >> 248u32, u(0xff));
    }

    #[test]
    fn signed_division() {
        let minus_seven = U256::from(-7i64);
        let two = u(2);
        assert_eq!(minus_seven.signed_div(two), U256::from(-3i64));
        assert_eq!(minus_seven.signed_rem(two), U256::from(-1i64));
        assert_eq!(minus_seven.signed_div(U256::from(-2i64)), u(3));
        // i256::MIN / -1 wraps.
        let min = U256::ONE << 255u32;
        assert_eq!(min.signed_div(U256::MAX), min);
    }

    #[test]
    fn signed_comparison() {
        let neg = U256::from(-1i64);
        assert_eq!(neg.signed_cmp(&U256::ONE), Ordering::Less);
        assert_eq!(U256::ONE.signed_cmp(&neg), Ordering::Greater);
        assert_eq!(neg.signed_cmp(&U256::from(-2i64)), Ordering::Greater);
    }

    #[test]
    fn sign_extend_negative_byte() {
        // 0xff in the lowest byte, extend from byte 0 → -1.
        assert_eq!(u(0xff).sign_extend(U256::ZERO), U256::MAX);
        // 0x7f stays positive.
        assert_eq!(u(0x7f).sign_extend(U256::ZERO), u(0x7f));
        // Extending from byte 31+ is the identity.
        assert_eq!(U256::MAX.sign_extend(u(31)), U256::MAX);
        assert_eq!(u(42).sign_extend(u(100)), u(42));
    }

    #[test]
    fn sign_extend_clears_high_garbage() {
        // Garbage above a positive int16 must be cleared.
        let v = U256::from_hex("ffff00ff").unwrap();
        assert_eq!(v.sign_extend(U256::ONE), u(0x00ff));
    }

    #[test]
    fn byte_indexing_is_big_endian() {
        let v = U256::from_hex("0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20")
            .unwrap();
        assert_eq!(v.byte(U256::ZERO), u(0x01));
        assert_eq!(v.byte(u(31)), u(0x20));
        assert_eq!(v.byte(u(32)), U256::ZERO);
    }

    #[test]
    fn sar_preserves_sign() {
        let neg2 = U256::from(-2i64);
        assert_eq!(neg2.sar(U256::ONE), U256::from(-1i64));
        assert_eq!(neg2.sar(u(300)), U256::MAX);
        assert_eq!(u(8).sar(u(2)), u(2));
        assert_eq!(u(8).sar(u(300)), U256::ZERO);
    }

    /// Bit-level reference models for the three shifts, for exhaustive
    /// boundary pinning — deliberately naive so a limb-arithmetic bug in
    /// the real implementations cannot also hide here.
    fn from_bits(bits: &[bool; 256]) -> U256 {
        let mut out = [0u64; 4];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                out[i / 64] |= 1u64 << (i % 64);
            }
        }
        U256(out)
    }

    fn ref_shl(v: U256, s: u32) -> U256 {
        let mut bits = [false; 256];
        for (i, b) in bits.iter_mut().enumerate() {
            *b = (i as u32) >= s && v.bit(i as u32 - s);
        }
        from_bits(&bits)
    }

    fn ref_shr(v: U256, s: u32) -> U256 {
        let mut bits = [false; 256];
        for (i, b) in bits.iter_mut().enumerate() {
            *b = (i as u32).checked_add(s).map(|j| v.bit(j)).unwrap_or(false);
        }
        from_bits(&bits)
    }

    fn ref_sar(v: U256, s: u32) -> U256 {
        let sign = v.bit(255);
        let mut bits = [false; 256];
        for (i, b) in bits.iter_mut().enumerate() {
            let j = (i as u32).saturating_add(s);
            *b = if j < 256 { v.bit(j) } else { sign };
        }
        from_bits(&bits)
    }

    #[test]
    fn shift_boundaries_match_reference_model() {
        // EVM semantics at every interesting boundary: shift 0, limb
        // edges (63/64/65, 127/128, 191/192), 254/255, and the ≥256
        // overflow region where SHL/SHR yield zero and SAR yields the
        // sign fill.
        let values = [
            U256::ZERO,
            U256::ONE,
            U256::MAX,
            U256::ONE << 255u32,               // sign bit only
            (U256::ONE << 255u32) | U256::ONE, // sign bit + low bit
            U256::MAX >> 1u32,                 // max positive
            U256::from(0xdead_beef_cafe_babeu64),
            U256([
                0x0123_4567_89ab_cdef,
                0xfedc_ba98_7654_3210,
                0x0f0f_0f0f_0f0f_0f0f,
                0x8421_8421_8421_8421,
            ]),
        ];
        let shifts = [
            0u32, 1, 7, 8, 31, 32, 63, 64, 65, 127, 128, 129, 191, 192, 193, 224, 254, 255,
        ];
        for &v in &values {
            for &s in &shifts {
                assert_eq!(v << s, ref_shl(v, s), "shl {v:?} by {s}");
                assert_eq!(v >> s, ref_shr(v, s), "shr {v:?} by {s}");
                assert_eq!(v.sar(u(s as u64)), ref_sar(v, s), "sar {v:?} by {s}");
                // U256-amount operators agree with the u32 ones in range.
                assert_eq!(v << u(s as u64), v << s);
                assert_eq!(v >> u(s as u64), v >> s);
            }
        }
    }

    #[test]
    fn shift_at_and_past_256_saturates() {
        let overflow_amounts = [
            u(256),
            u(257),
            u(1000),
            U256::ONE << 64u32,  // amount not representable as u64
            U256::ONE << 255u32, // "negative" amount is still huge unsigned
            U256::MAX,
        ];
        let values = [U256::ONE, U256::MAX, U256::ONE << 255u32, u(42)];
        for &v in &values {
            for &s in &overflow_amounts {
                assert_eq!(v << s, U256::ZERO, "shl {v:?} by {s:?}");
                assert_eq!(v >> s, U256::ZERO, "shr {v:?} by {s:?}");
                let expected = if v.is_negative() {
                    U256::MAX
                } else {
                    U256::ZERO
                };
                assert_eq!(v.sar(s), expected, "sar {v:?} by {s:?}");
            }
            assert_eq!(v << 256u32, U256::ZERO);
            assert_eq!(v >> 256u32, U256::ZERO);
            assert_eq!(v << u32::MAX, U256::ZERO);
            assert_eq!(v >> u32::MAX, U256::ZERO);
        }
    }

    #[test]
    fn sar_at_255_collapses_to_sign() {
        // Shifting by 255 leaves exactly the sign bit replicated: −1 for
        // any negative value, 0 or 1 for non-negative ones.
        assert_eq!((U256::ONE << 255u32).sar(u(255)), U256::MAX);
        assert_eq!(U256::MAX.sar(u(255)), U256::MAX);
        assert_eq!((U256::MAX >> 1u32).sar(u(255)), U256::ZERO);
        assert_eq!(((U256::ONE << 254u32) | U256::ONE).sar(u(255)), U256::ZERO);
        assert_eq!(U256::ONE.sar(u(255)), U256::ZERO);
    }

    #[test]
    fn addmod_mulmod() {
        // 2^256 ≡ 4 (mod 12), so 2^256−1 ≡ 3 and (MAX + MAX) mod 12 = 6.
        assert_eq!(U256::MAX.add_mod(U256::MAX, u(12)), u(6));
        assert_eq!(u(10).add_mod(u(10), u(8)), u(4));
        assert_eq!(u(10).mul_mod(u(10), u(8)), u(4));
        // (m−1)² mod (m−2) ≡ 1 where m−1 ≡ 1 (mod m−2) ... with m = 2^256:
        assert_eq!(
            U256::MAX.mul_mod(U256::MAX, U256::MAX - U256::ONE),
            U256::ONE
        );
        assert_eq!(u(5).add_mod(u(5), U256::ZERO), U256::ZERO);
        assert_eq!(u(5).mul_mod(u(5), U256::ZERO), U256::ZERO);
    }

    #[test]
    fn hex_round_trip() {
        let s = "deadbeefcafebabe0123456789abcdef";
        let v = U256::from_hex(s).unwrap();
        assert_eq!(format!("{:x}", v), s);
        assert_eq!(U256::from_hex("0x10").unwrap(), u(16));
        assert!(U256::from_hex("xyz").is_none());
        assert!(U256::from_hex(&"f".repeat(65)).is_none());
    }

    #[test]
    fn be_bytes_round_trip() {
        let v = U256::from_hex("0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20")
            .unwrap();
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
        // Short slices zero-extend on the left.
        assert_eq!(U256::from_be_bytes(&[0x12, 0x34]), u(0x1234));
    }

    #[test]
    fn display_decimal() {
        assert_eq!(U256::ZERO.to_string(), "0");
        assert_eq!(u(12345).to_string(), "12345");
        assert_eq!(
            U256::MAX.to_string(),
            "115792089237316195423570985008687907853269984665640564039457584007913129639935"
        );
    }

    #[test]
    fn masks() {
        assert_eq!(U256::low_mask(8), u(0xff));
        assert_eq!(U256::low_mask(0), U256::ZERO);
        assert_eq!(U256::low_mask(256), U256::MAX);
        assert_eq!(
            U256::high_mask(8),
            U256::from_hex("ff00000000000000000000000000000000000000000000000000000000000000")
                .unwrap()
        );
        assert_eq!(U256::high_mask(256), U256::MAX);
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256::MAX.bits(), 256);
        assert_eq!((U256::ONE << 200u32).bits(), 201);
        assert!((U256::ONE << 200u32).bit(200));
        assert!(!(U256::ONE << 200u32).bit(201));
    }

    #[test]
    fn from_i64_negative() {
        assert_eq!(U256::from(-1i64), U256::MAX);
        assert_eq!(U256::from(-1i64).wrapping_neg(), U256::ONE);
    }
}
