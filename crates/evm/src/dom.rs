//! Dominator analysis and natural-loop detection over the CFG.
//!
//! The classic Cooper–Harvey–Kennedy iterative dominator algorithm, plus
//! back-edge and natural-loop extraction. SigRec's executor uses a cheap
//! pc-range heuristic for compiler-shaped loops; this module provides the
//! principled equivalent for arbitrary code and for consumers that need a
//! real loop nest (the reverse-engineering pipeline, future CFG passes).

use crate::cfg::{BlockId, Cfg};
use std::collections::{BTreeMap, BTreeSet};

/// The dominator tree of a [`Cfg`], rooted at block 0.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// Immediate dominator of each reachable block (the root maps to
    /// itself).
    idom: BTreeMap<BlockId, BlockId>,
    /// Reverse-post-order of reachable blocks.
    rpo: Vec<BlockId>,
}

impl Dominators {
    /// Computes dominators for every block reachable from the entry.
    /// Blocks only reachable through symbolic jumps are treated as
    /// unreachable (their targets are unknown statically).
    pub fn new(cfg: &Cfg) -> Self {
        let rpo = reverse_post_order(cfg);
        let index: BTreeMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        // Predecessor lists over reachable blocks.
        let mut preds: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
        for &b in &rpo {
            if let Some(block) = cfg.block(b) {
                for &s in &block.successors {
                    if index.contains_key(&s) {
                        preds.entry(s).or_default().push(b);
                    }
                }
            }
        }
        let mut idom: BTreeMap<BlockId, BlockId> = BTreeMap::new();
        if rpo.is_empty() {
            return Dominators { idom, rpo };
        }
        let entry = rpo[0];
        idom.insert(entry, entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in preds.get(&b).into_iter().flatten() {
                    if !idom.contains_key(&p) {
                        continue; // not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &index, cur, p),
                    });
                }
                if let Some(n) = new_idom {
                    if idom.get(&b) != Some(&n) {
                        idom.insert(b, n);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo }
    }

    /// The immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom.get(&b) {
            Some(&d) if d != b => Some(d),
            Some(_) => None, // entry
            None => None,
        }
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom.get(&cur) {
                Some(&d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Reachable blocks in reverse post-order.
    pub fn reverse_post_order(&self) -> &[BlockId] {
        &self.rpo
    }
}

fn intersect(
    idom: &BTreeMap<BlockId, BlockId>,
    index: &BTreeMap<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while index[&a] > index[&b] {
            a = idom[&a];
        }
        while index[&b] > index[&a] {
            b = idom[&b];
        }
    }
    a
}

fn reverse_post_order(cfg: &Cfg) -> Vec<BlockId> {
    let mut visited = BTreeSet::new();
    let mut post = Vec::new();
    // Iterative DFS with an explicit "exit" marker.
    let mut stack: Vec<(BlockId, bool)> = vec![(0, false)];
    while let Some((b, processed)) = stack.pop() {
        if processed {
            post.push(b);
            continue;
        }
        if !visited.insert(b) {
            continue;
        }
        if cfg.block(b).is_none() {
            visited.remove(&b);
            continue;
        }
        stack.push((b, true));
        if let Some(block) = cfg.block(b) {
            for &s in block.successors.iter().rev() {
                if !visited.contains(&s) {
                    stack.push((s, false));
                }
            }
        }
    }
    post.reverse();
    post
}

/// A natural loop: a back edge `latch → header` where the header dominates
/// the latch, plus the set of blocks in the loop body.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// The loop header.
    pub header: BlockId,
    /// The block with the back edge.
    pub latch: BlockId,
    /// All blocks in the loop (header included).
    pub body: BTreeSet<BlockId>,
}

/// Finds all natural loops of the CFG.
pub fn natural_loops(cfg: &Cfg) -> Vec<NaturalLoop> {
    let dom = Dominators::new(cfg);
    let mut out = Vec::new();
    for &b in dom.reverse_post_order() {
        let Some(block) = cfg.block(b) else { continue };
        for &s in &block.successors {
            if dom.dominates(s, b) {
                // Back edge b → s: flood predecessors from the latch.
                let mut body: BTreeSet<BlockId> = BTreeSet::new();
                body.insert(s);
                let mut stack = vec![b];
                while let Some(x) = stack.pop() {
                    if !body.insert(x) {
                        continue;
                    }
                    // Predecessors of x.
                    for &p in dom.reverse_post_order() {
                        if let Some(pb) = cfg.block(p) {
                            if pb.successors.contains(&x) && !body.contains(&p) {
                                stack.push(p);
                            }
                        }
                    }
                }
                out.push(NaturalLoop {
                    header: s,
                    latch: b,
                    body,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::opcode::Opcode as Op;

    fn loop_code() -> Vec<u8> {
        // i = 3; while (i != 0) i -= 1; stop.
        let mut a = Assembler::new();
        let head = a.fresh_label();
        let exit = a.fresh_label();
        a.push_u64(3);
        a.jumpdest(head);
        a.op(Op::Dup(1))
            .op(Op::IsZero)
            .push_label(exit)
            .op(Op::JumpI);
        a.push_u64(1).op(Op::Swap(1)).op(Op::Sub);
        a.push_label(head).op(Op::Jump);
        a.jumpdest(exit).op(Op::Stop);
        a.assemble()
    }

    #[test]
    fn straight_line_dominators() {
        // PUSH1 1 POP JUMPDEST STOP: two blocks, 0 dominates 3.
        let code = [0x60, 0x01, 0x50, 0x5b, 0x00];
        let cfg = Cfg::new(&code);
        let dom = Dominators::new(&cfg);
        assert!(dom.dominates(0, 3));
        assert!(!dom.dominates(3, 0));
        assert_eq!(dom.idom(3), Some(0));
        assert_eq!(dom.idom(0), None);
    }

    #[test]
    fn diamond_dominators() {
        // entry → (then | else) → join: join's idom is the entry.
        let mut a = Assembler::new();
        let then_l = a.fresh_label();
        let join = a.fresh_label();
        a.push_u64(1).push_label(then_l).op(Op::JumpI);
        a.push_u64(0).op(Op::Pop);
        a.push_label(join).op(Op::Jump);
        a.jumpdest(then_l);
        a.push_u64(1).op(Op::Pop);
        a.push_label(join).op(Op::Jump);
        a.jumpdest(join).op(Op::Stop);
        let cfg = Cfg::new(&a.assemble());
        let dom = Dominators::new(&cfg);
        // Find the join block (the final STOP's block).
        let join_pc = cfg.blocks().last().unwrap().start;
        assert_eq!(dom.idom(join_pc), Some(0));
    }

    #[test]
    fn detects_natural_loop() {
        let cfg = Cfg::new(&loop_code());
        let loops = natural_loops(&cfg);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert!(l.body.contains(&l.header));
        assert!(l.body.contains(&l.latch));
        assert!(l.body.len() >= 2);
        // The header is the JUMPDEST at pc 2.
        assert_eq!(l.header, 2);
    }

    #[test]
    fn loop_free_code_has_no_loops() {
        let code = [0x60, 0x01, 0x50, 0x5b, 0x00];
        assert!(natural_loops(&Cfg::new(&code)).is_empty());
    }

    #[test]
    fn unreachable_blocks_ignored() {
        // entry STOP, then an unreachable JUMPDEST island.
        let code = [0x00, 0x5b, 0x60, 0x01, 0x50, 0x00];
        let cfg = Cfg::new(&code);
        let dom = Dominators::new(&cfg);
        assert_eq!(dom.reverse_post_order(), &[0]);
        assert_eq!(dom.idom(1), None);
    }
}
