//! # sigrec-evm
//!
//! The Ethereum-virtual-machine substrate of the SigRec reproduction:
//!
//! - [`U256`] — 256-bit EVM words with full unsigned *and* signed arithmetic;
//! - [`Opcode`] — the complete instruction set with stack-arity metadata;
//! - [`Disassembly`] — a linear-sweep disassembler (PUSH-immediate aware);
//! - [`Cfg`] — basic-block recognition and control-flow edges;
//! - [`Assembler`] — a label-aware bytecode builder used by the Solidity- and
//!   Vyper-pattern code generators;
//! - [`Interpreter`] — a concrete, gas-free EVM used by the fuzzing
//!   experiment and for differential-testing generated code;
//! - [`keccak256`] — Keccak-256 from scratch (function selectors).
//!
//! Everything here is self-contained: no external EVM, big-integer, or
//! hashing crates. The SigRec core (`sigrec-core`) builds its type-aware
//! symbolic execution on top of these primitives.

#![warn(missing_docs)]

pub mod asm;
pub mod cfg;
pub mod disasm;
pub mod dom;
pub mod gas;
pub mod interp;
pub mod keccak;
pub mod opcode;
pub mod program;
pub mod trace;
pub mod u256;

pub use asm::{emit_junk_block, Assembler, Label};
pub use cfg::{BasicBlock, BlockId, Cfg};
pub use disasm::{Disassembly, Instruction};
pub use dom::{natural_loops, Dominators, NaturalLoop};
pub use interp::{Env, Execution, HaltReason, Interpreter, Outcome, STACK_LIMIT};
pub use keccak::{keccak256, selector};
pub use opcode::Opcode;
pub use program::{BlockInfo, JumpTarget, Program, Step, StepKind};
pub use trace::{OpcodeHistogram, TraceCollector, TraceStep, Tracer};
pub use u256::U256;
