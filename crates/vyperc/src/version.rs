//! Vyper compiler versions.
//!
//! The paper's Fig. 16 sweeps 17 Vyper versions from 0.1.0b4 to 0.2.8 and
//! finds that accuracy dips only on versions with very few contracts —
//! not because of compiler features. We model a small behavioural knob
//! (a calldatasize well-formedness guard emitted by the 0.1.x beta line)
//! so the sweep exercises genuinely distinct bytecode.

use std::fmt;

/// A Vyper compiler version.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VyperVersion {
    /// Minor version (the `x` in `0.x.y`).
    pub minor: u8,
    /// Patch version.
    pub patch: u8,
    /// Beta number for the 0.1.0 line (0 = not a beta).
    pub beta: u8,
}

impl VyperVersion {
    /// The newest modelled version.
    pub const V0_2_8: VyperVersion = VyperVersion {
        minor: 2,
        patch: 8,
        beta: 0,
    };

    /// The 0.1.x beta line emits an explicit calldatasize guard at function
    /// entry; later versions fold it into the decoder.
    pub fn emits_calldatasize_guard(&self) -> bool {
        self.minor < 2
    }

    /// The Fig. 16 sweep: 17 versions from 0.1.0b4 to 0.2.8.
    pub fn sweep() -> Vec<VyperVersion> {
        let mut out = Vec::new();
        for beta in [4u8, 8, 12, 14, 16, 17] {
            out.push(VyperVersion {
                minor: 1,
                patch: 0,
                beta,
            });
        }
        for patch in [1u8, 2] {
            out.push(VyperVersion {
                minor: 1,
                patch,
                beta: 0,
            });
        }
        for patch in 0..=8u8 {
            out.push(VyperVersion {
                minor: 2,
                patch,
                beta: 0,
            });
        }
        out
    }
}

impl fmt::Display for VyperVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.beta > 0 {
            write!(f, "0.{}.{}b{}", self.minor, self.patch, self.beta)
        } else {
            write!(f, "0.{}.{}", self.minor, self.patch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_17_versions() {
        assert_eq!(VyperVersion::sweep().len(), 17);
    }

    #[test]
    fn guard_era() {
        assert!(VyperVersion {
            minor: 1,
            patch: 0,
            beta: 4
        }
        .emits_calldatasize_guard());
        assert!(!VyperVersion::V0_2_8.emits_calldatasize_guard());
    }

    #[test]
    fn display() {
        assert_eq!(
            VyperVersion {
                minor: 1,
                patch: 0,
                beta: 4
            }
            .to_string(),
            "0.1.0b4"
        );
        assert_eq!(VyperVersion::V0_2_8.to_string(), "0.2.8");
    }
}
