//! # sigrec-vyperc
//!
//! A miniature Vyper back-end: emits EVM runtime bytecode exhibiting the
//! calldata-access patterns the Vyper compiler produces (§2.3.2 of the
//! SigRec paper). The defining difference from Solidity is that Vyper
//! *range-checks* loaded values with comparison instructions (`LT`, `SLT`,
//! `SGT`) instead of masking them (`AND`, `SIGNEXTEND`) — the behavioural
//! hinge of the paper's rule R20 (language discrimination) and R27–R31
//! (Vyper basic-type refinement). Vyper also generates the same bytecode
//! for public and external functions, and reads fixed-size byte arrays and
//! strings with a constant-length `CALLDATACOPY` of `32 + maxLen` bytes
//! (rule R23).

#![warn(missing_docs)]

pub mod version;

use sigrec_abi::{AbiType, FunctionSignature, Selector, VyperType};
use sigrec_evm::{emit_junk_block, Assembler, Opcode, U256};
pub use version::VyperVersion;

/// Behaviour-preserving emission options for metamorphic testing,
/// mirroring `sigrec_solc::EmitVariant` (Vyper's dispatcher is always a
/// linear `EQ` chain, so there is no shape knob).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VyperEmitVariant {
    /// Order in which the dispatcher compares selectors, as a permutation
    /// of function indices; `None` keeps declaration order.
    pub dispatch_order: Option<Vec<usize>>,
    /// Unreachable junk helper blocks emitted between the dispatcher
    /// fallback and the first function body.
    pub junk_blocks: usize,
    /// Seed for the junk block contents.
    pub junk_seed: u64,
}

/// A source-level oddity making the declared Vyper signature
/// unrecoverable from bytecode (the Vyper flavour of the paper's error
/// case 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum VyperQuirk {
    /// No quirk.
    #[default]
    None,
    /// A `bytes[maxLen]` parameter whose individual bytes are never
    /// accessed — indistinguishable from `string[maxLen]`.
    BytesNeverByteAccessed,
}

/// One Vyper function to generate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VyperFunctionSpec {
    /// Function name.
    pub name: String,
    /// Parameter types, in Vyper's surface grammar.
    pub params: Vec<VyperType>,
    /// Injected error case, if any.
    pub quirk: VyperQuirk,
}

impl VyperFunctionSpec {
    /// Creates a quirk-free spec.
    pub fn new(name: impl Into<String>, params: Vec<VyperType>) -> Self {
        VyperFunctionSpec {
            name: name.into(),
            params,
            quirk: VyperQuirk::None,
        }
    }

    /// Sets the quirk (builder style).
    pub fn with_quirk(mut self, quirk: VyperQuirk) -> Self {
        self.quirk = quirk;
        self
    }

    /// The ground-truth signature in calldata-layout terms: parameters
    /// lowered onto the ABI grammar (structs flattened, `decimal` as
    /// `int168`, `bytes[maxLen]`/`string[maxLen]` as `bytes`/`string`).
    ///
    /// The selector is computed over the lowered canonical spelling; the
    /// reproduction only needs selectors to be *consistent* between
    /// generator and recovery, not to match the real Vyper toolchain's
    /// `fixed168x10` spelling (documented in DESIGN.md).
    pub fn lowered_signature(&self) -> FunctionSignature {
        let params: Vec<AbiType> = self.params.iter().flat_map(|t| t.lower()).collect();
        FunctionSignature::from_declaration(&self.name, params)
    }
}

/// A compiled Vyper contract with its ground truth.
#[derive(Clone, Debug)]
pub struct CompiledVyperContract {
    /// The runtime bytecode.
    pub code: Vec<u8>,
    /// The functions it dispatches.
    pub functions: Vec<VyperFunctionSpec>,
    /// The version it was generated as.
    pub version: VyperVersion,
}

/// The signed bound 2¹²⁷ used by `int128` range checks.
fn int128_upper() -> U256 {
    U256::ONE << 127u32
}

/// The scaled bound 2¹²⁷ · 10¹⁰ used by `decimal` range checks.
pub fn decimal_upper() -> U256 {
    (U256::ONE << 127u32) * U256::from(10_000_000_000u64)
}

/// Compiles a Vyper contract hosting `functions`.
///
/// # Examples
///
/// ```
/// use sigrec_vyperc::{compile, VyperFunctionSpec, VyperVersion};
/// use sigrec_abi::VyperType;
///
/// let f = VyperFunctionSpec::new("pay", vec![VyperType::Address, VyperType::Uint256]);
/// let contract = compile(&[f], VyperVersion::V0_2_8);
/// assert!(!contract.code.is_empty());
/// ```
pub fn compile(functions: &[VyperFunctionSpec], version: VyperVersion) -> CompiledVyperContract {
    compile_with_variant(functions, version, &VyperEmitVariant::default())
}

/// Like [`compile`], with explicit [`VyperEmitVariant`] emission options.
///
/// # Panics
///
/// Panics if `variant.dispatch_order` is present but not a permutation of
/// `0..functions.len()`.
pub fn compile_with_variant(
    functions: &[VyperFunctionSpec],
    version: VyperVersion,
    variant: &VyperEmitVariant,
) -> CompiledVyperContract {
    let order: Vec<usize> = match &variant.dispatch_order {
        Some(order) => {
            let mut seen = vec![false; functions.len()];
            assert_eq!(order.len(), functions.len(), "dispatch_order length");
            for &i in order {
                assert!(
                    i < functions.len() && !std::mem::replace(&mut seen[i], true),
                    "dispatch_order must be a permutation of 0..{}",
                    functions.len()
                );
            }
            order.clone()
        }
        None => (0..functions.len()).collect(),
    };
    let mut asm = Assembler::new();
    // Dispatcher (Vyper uses the SHR idiom throughout our modelled range).
    asm.push_u64(0).op(Opcode::CallDataLoad);
    asm.push_u64(0xe0).op(Opcode::Shr);
    let entries: Vec<_> = functions.iter().map(|_| asm.fresh_label()).collect();
    let selectors: Vec<Selector> = functions
        .iter()
        .map(|f| f.lowered_signature().selector)
        .collect();
    for &i in &order {
        asm.op(Opcode::Dup(1));
        asm.push_sized(U256::from(selectors[i].as_u32() as u64), 4);
        asm.op(Opcode::Eq);
        asm.push_label(entries[i]).op(Opcode::JumpI);
    }
    asm.op(Opcode::Pop).op(Opcode::Stop);
    for k in 0..variant.junk_blocks {
        emit_junk_block(&mut asm, variant.junk_seed.wrapping_add(k as u64));
    }
    for (f, &entry) in functions.iter().zip(&entries) {
        asm.jumpdest(entry);
        if version.emits_calldatasize_guard() {
            // calldatasize >= 4 — a coarse well-formedness check some
            // versions emit; rules must tolerate and ignore it.
            let ok = asm.fresh_label();
            asm.push_u64(3).op(Opcode::CallDataSize).op(Opcode::Gt);
            asm.push_label(ok).op(Opcode::JumpI);
            asm.push_u64(0).push_u64(0).op(Opcode::Revert);
            asm.jumpdest(ok);
        }
        let mut em = VyperEmitter {
            asm: &mut asm,
            mem_next: 0x80,
            sym_slot: 0,
        };
        let mut head = 0u64;
        for p in &f.params {
            let surface = match (&f.quirk, p) {
                (VyperQuirk::BytesNeverByteAccessed, VyperType::FixedBytes(m)) => {
                    VyperType::FixedString(*m)
                }
                _ => p.clone(),
            };
            for lowered in p.lower() {
                em.param(&surface, &lowered, head);
                head += lowered.head_size() as u64;
            }
        }
        asm.op(Opcode::Stop);
    }
    CompiledVyperContract {
        code: asm.assemble(),
        functions: functions.to_vec(),
        version,
    }
}

struct VyperEmitter<'a> {
    asm: &'a mut Assembler,
    mem_next: u64,
    sym_slot: u64,
}

impl<'a> VyperEmitter<'a> {
    fn alloc(&mut self, bytes: u64) -> u64 {
        let addr = self.mem_next;
        self.mem_next += bytes.div_ceil(32) * 32;
        addr
    }

    fn push_sym_index(&mut self) {
        self.asm.push_u64(self.sym_slot).op(Opcode::SLoad);
        self.sym_slot += 1;
    }

    fn guard(&mut self) {
        let ok = self.asm.fresh_label();
        self.asm.push_label(ok).op(Opcode::JumpI);
        self.asm.push_u64(0).push_u64(0).op(Opcode::Revert);
        self.asm.jumpdest(ok);
    }

    /// Emits one parameter. `surface` is the Vyper type (drives the
    /// access/check pattern), `lowered` its layout type at this head slot
    /// (a struct contributes one call per flattened member, all sharing
    /// the member's own basic pattern).
    fn param(&mut self, surface: &VyperType, lowered: &AbiType, head: u64) {
        match surface {
            VyperType::Struct(_) => {
                // Members arrive individually via lower(); recover the
                // member's surface type from the lowered form.
                let member = surface_of(lowered);
                self.basic(&member, head);
            }
            VyperType::FixedList(..) => self.fixed_list(surface, head),
            VyperType::FixedBytes(max) => self.fixed_bytes_like(head, *max as u64, true),
            VyperType::FixedString(max) => self.fixed_bytes_like(head, *max as u64, false),
            basic => self.basic(basic, head),
        }
    }

    /// `CALLDATALOAD` + comparison range check (Listing 5 of the paper).
    fn basic(&mut self, ty: &VyperType, head: u64) {
        self.asm.push_u64(4 + head).op(Opcode::CallDataLoad);
        self.range_check(ty);
    }

    /// Consumes the value on the stack top with the type's range checks.
    fn range_check(&mut self, ty: &VyperType) {
        match ty {
            VyperType::Uint256 => {
                self.asm.op(Opcode::Pop);
            }
            VyperType::Address => {
                // value < 2^160 (R27).
                self.asm.push_sized(U256::ONE << 160u32, 21);
                self.asm.op(Opcode::Dup(2)).op(Opcode::Lt);
                self.guard();
                self.asm.op(Opcode::Pop);
            }
            VyperType::Bool => {
                // value < 2 (R30).
                self.asm.push_u64(2).op(Opcode::Dup(2)).op(Opcode::Lt);
                self.guard();
                self.asm.op(Opcode::Pop);
            }
            VyperType::Int128 => self.signed_range(int128_upper()),
            VyperType::Decimal => self.signed_range(decimal_upper()),
            VyperType::Bytes32 => {
                // Byte-granular use (R31).
                self.asm.push_u64(0).op(Opcode::Byte).op(Opcode::Pop);
            }
            other => unreachable!("range_check on non-basic {other}"),
        }
    }

    /// `v < upper` (signed) and `v > -upper - 1` (signed), guarded.
    fn signed_range(&mut self, upper: U256) {
        self.asm.push(upper);
        self.asm.op(Opcode::Dup(2)).op(Opcode::SLt);
        self.guard();
        self.asm.push(upper.wrapping_neg() - U256::ONE);
        self.asm.op(Opcode::Dup(2)).op(Opcode::SGt);
        self.guard();
        self.asm.op(Opcode::Pop);
    }

    /// Fixed-size list: the Solidity external static-array pattern with
    /// comparison bound checks (R24), elements range-checked per R27–R31.
    fn fixed_list(&mut self, ty: &VyperType, head: u64) {
        let mut dims = Vec::new();
        let mut cur = ty;
        while let VyperType::FixedList(el, n) = cur {
            dims.push(*n as u64);
            cur = el;
        }
        let first_slot = self.sym_slot;
        for &d in &dims {
            self.asm.push_u64(d);
            self.push_sym_index();
            self.asm.op(Opcode::Lt);
            self.guard();
        }
        self.asm.push_u64(first_slot).op(Opcode::SLoad);
        for (k, &d) in dims.iter().enumerate().skip(1) {
            self.asm.push_u64(d).op(Opcode::Mul);
            self.asm.push_u64(first_slot + k as u64).op(Opcode::SLoad);
            self.asm.op(Opcode::Add);
        }
        self.asm.push_u64(32).op(Opcode::Mul);
        self.asm.push_u64(4 + head).op(Opcode::Add);
        self.asm.op(Opcode::CallDataLoad);
        self.range_check(cur);
    }

    /// Fixed-size byte array / string: one `CALLDATACOPY` of a *constant*
    /// `32 + maxLen` bytes from the offset position (R23). Byte arrays are
    /// additionally byte-accessed (R26).
    fn fixed_bytes_like(&mut self, head: u64, max_len: u64, is_bytes: bool) {
        let dst = self.alloc(32 + max_len);
        self.asm.push_u64(32 + max_len); // len (constant!)
        self.asm.push_u64(4 + head).op(Opcode::CallDataLoad);
        self.asm.push_u64(4).op(Opcode::Add); // src = offset + 4
        self.asm.push_u64(dst);
        self.asm.op(Opcode::CallDataCopy);
        if is_bytes {
            self.asm.push_u64(dst + 32).op(Opcode::MLoad);
            self.asm.push_u64(0).op(Opcode::Byte).op(Opcode::Pop);
        }
    }
}

/// Maps a lowered basic layout type back to the Vyper surface type — used
/// for flattened struct members.
fn surface_of(lowered: &AbiType) -> VyperType {
    match lowered {
        AbiType::Bool => VyperType::Bool,
        AbiType::Int(128) => VyperType::Int128,
        AbiType::Int(168) => VyperType::Decimal,
        AbiType::Uint(256) => VyperType::Uint256,
        AbiType::Address => VyperType::Address,
        AbiType::FixedBytes(32) => VyperType::Bytes32,
        other => unreachable!("no Vyper surface type lowers to {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigrec_abi::{encode_call, AbiValue};
    use sigrec_evm::{Env, Interpreter, Outcome};

    fn run(params: Vec<VyperType>, values: &[AbiValue]) -> Outcome {
        let f = VyperFunctionSpec::new("f", params);
        let sig = f.lowered_signature();
        let calldata = encode_call(&sig, values).unwrap();
        let c = compile(&[f], VyperVersion::V0_2_8);
        Interpreter::new(&c.code)
            .run(&Env::with_calldata(calldata))
            .outcome
    }

    fn u(v: u64) -> AbiValue {
        AbiValue::Uint(U256::from(v))
    }

    #[test]
    fn basic_types_run_clean_in_range() {
        assert_eq!(run(vec![VyperType::Uint256], &[u(7)]), Outcome::Stop);
        assert_eq!(
            run(
                vec![VyperType::Address],
                &[AbiValue::Address(U256::from(0xffu64))]
            ),
            Outcome::Stop
        );
        assert_eq!(
            run(vec![VyperType::Bool], &[AbiValue::Bool(true)]),
            Outcome::Stop
        );
        assert_eq!(
            run(
                vec![VyperType::Int128],
                &[AbiValue::Int(U256::from(-55i64))]
            ),
            Outcome::Stop
        );
        assert_eq!(
            run(
                vec![VyperType::Decimal],
                &[AbiValue::Int(U256::from(123_456i64))]
            ),
            Outcome::Stop
        );
        assert_eq!(
            run(
                vec![VyperType::Bytes32],
                &[AbiValue::FixedBytes(vec![9u8; 32])]
            ),
            Outcome::Stop
        );
    }

    #[test]
    fn out_of_range_values_revert() {
        // int128 out of range: 2^127 itself must fail the SLT check.
        let f = VyperFunctionSpec::new("f", vec![VyperType::Int128]);
        let sig = f.lowered_signature();
        let mut calldata = sig.selector.0.to_vec();
        calldata.extend((U256::ONE << 127u32).to_be_bytes());
        let c = compile(&[f], VyperVersion::V0_2_8);
        let out = Interpreter::new(&c.code)
            .run(&Env::with_calldata(calldata))
            .outcome;
        assert!(matches!(out, Outcome::Revert(_)), "got {:?}", out);
    }

    #[test]
    fn out_of_range_address_reverts() {
        let f = VyperFunctionSpec::new("f", vec![VyperType::Address]);
        let sig = f.lowered_signature();
        let mut calldata = sig.selector.0.to_vec();
        calldata.extend((U256::ONE << 160u32).to_be_bytes());
        let c = compile(&[f], VyperVersion::V0_2_8);
        let out = Interpreter::new(&c.code)
            .run(&Env::with_calldata(calldata))
            .outcome;
        assert!(matches!(out, Outcome::Revert(_)));
    }

    #[test]
    fn fixed_list_runs_clean() {
        let t = VyperType::FixedList(Box::new(VyperType::Uint256), 3);
        assert_eq!(
            run(vec![t], &[AbiValue::Array(vec![u(1), u(2), u(3)])]),
            Outcome::Stop
        );
    }

    #[test]
    fn nested_fixed_list_runs_clean() {
        let inner = VyperType::FixedList(Box::new(VyperType::Int128), 2);
        let t = VyperType::FixedList(Box::new(inner), 2);
        let v = AbiValue::Array(vec![
            AbiValue::Array(vec![
                AbiValue::Int(U256::ONE),
                AbiValue::Int(U256::from(2u64)),
            ]),
            AbiValue::Array(vec![
                AbiValue::Int(U256::from(3u64)),
                AbiValue::Int(U256::from(4u64)),
            ]),
        ]);
        assert_eq!(run(vec![t], &[v]), Outcome::Stop);
    }

    #[test]
    fn fixed_bytes_and_string_run_clean() {
        assert_eq!(
            run(
                vec![VyperType::FixedBytes(50)],
                &[AbiValue::Bytes(vec![1, 2, 3])]
            ),
            Outcome::Stop
        );
        assert_eq!(
            run(
                vec![VyperType::FixedString(20)],
                &[AbiValue::Str("vyper".into())]
            ),
            Outcome::Stop
        );
    }

    #[test]
    fn struct_flattens_and_runs() {
        let s = VyperType::Struct(vec![VyperType::Uint256, VyperType::Bool]);
        assert_eq!(run(vec![s], &[u(5), AbiValue::Bool(false)]), Outcome::Stop);
    }

    #[test]
    fn decimal_bound_constant() {
        // 2^127 * 10^10.
        let d = decimal_upper();
        assert_eq!(d >> 127u32, U256::from(10_000_000_000u64));
    }

    #[test]
    fn lowered_signature_flattens_struct() {
        let f = VyperFunctionSpec::new(
            "g",
            vec![VyperType::Struct(vec![
                VyperType::Uint256,
                VyperType::Uint256,
            ])],
        );
        assert_eq!(f.lowered_signature().param_list(), "(uint256,uint256)");
    }

    #[test]
    fn emit_variants_preserve_concrete_behaviour() {
        let fns = vec![
            VyperFunctionSpec::new("f", vec![VyperType::Uint256]),
            VyperFunctionSpec::new("g", vec![VyperType::Bool]),
            VyperFunctionSpec::new("h", vec![VyperType::Address]),
        ];
        let sig = fns[1].lowered_signature();
        let cd = encode_call(&sig, &[AbiValue::Bool(true)]).unwrap();
        let variants = [
            VyperEmitVariant::default(),
            VyperEmitVariant {
                dispatch_order: Some(vec![2, 0, 1]),
                ..Default::default()
            },
            VyperEmitVariant {
                junk_blocks: 4,
                junk_seed: 17,
                ..Default::default()
            },
        ];
        for v in &variants {
            let c = compile_with_variant(&fns, VyperVersion::V0_2_8, v);
            let out = Interpreter::new(&c.code)
                .run(&Env::with_calldata(cd.clone()))
                .outcome;
            assert_eq!(out, Outcome::Stop, "variant {:?}", v);
            let miss = Interpreter::new(&c.code)
                .run(&Env::with_calldata(vec![1, 2, 3, 4]))
                .outcome;
            assert_eq!(miss, Outcome::Stop, "fallback under {:?}", v);
        }
        assert_eq!(
            compile(&fns, VyperVersion::V0_2_8).code,
            compile_with_variant(&fns, VyperVersion::V0_2_8, &VyperEmitVariant::default()).code
        );
    }

    #[test]
    fn old_versions_emit_calldatasize_guard_and_still_run() {
        let f = VyperFunctionSpec::new("f", vec![VyperType::Uint256]);
        let sig = f.lowered_signature();
        let calldata = encode_call(&sig, &[u(3)]).unwrap();
        let c = compile(
            &[f],
            VyperVersion {
                minor: 1,
                patch: 0,
                beta: 4,
            },
        );
        let out = Interpreter::new(&c.code)
            .run(&Env::with_calldata(calldata))
            .outcome;
        assert_eq!(out, Outcome::Stop);
    }
}
