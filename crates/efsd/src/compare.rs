//! The §5.6 comparison harness (Tables 1–5).

use crate::tools::{RecoveryTool, ToolOutput};
use sigrec_corpus::Corpus;
use std::collections::HashMap;

/// Aggregate comparison figures for one tool over one dataset — the rows
/// of Tables 1–3.
#[derive(Clone, Debug, Default)]
pub struct ToolReport {
    /// Tool name.
    pub tool: String,
    /// Ground-truth functions considered.
    pub total: usize,
    /// Correct per the strict criterion (types exactly match the
    /// declaration).
    pub correct: usize,
    /// Functions for which the tool produced *no* signature.
    pub missing: usize,
    /// Functions where the parameter count was right but at least one type
    /// wrong (Table 2/3 row "incorrect types").
    pub wrong_types: usize,
    /// Functions where even the parameter count was wrong.
    pub wrong_count: usize,
    /// Functions lost to tool aborts.
    pub aborted: usize,
    /// Functions whose output agrees with a reference tool's (Table 1's
    /// agreement-with-SigRec measure); populated only when a reference is
    /// supplied.
    pub agree_with_reference: usize,
}

impl ToolReport {
    /// Accuracy in [0, 1].
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.correct as f64 / self.total as f64
    }

    /// Agreement ratio with the reference tool.
    pub fn agreement(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.agree_with_reference as f64 / self.total as f64
    }

    /// Abort ratio.
    pub fn abort_ratio(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.aborted as f64 / self.total as f64
    }
}

/// A reference tool's outputs keyed by `(contract index, selector)`.
pub type ReferenceOutputs = HashMap<(usize, [u8; 4]), Vec<sigrec_abi::AbiType>>;

/// Runs `tool` over the corpus, scoring against ground truth and (when
/// given) against a reference tool's outputs keyed by `(contract index,
/// selector)`.
pub fn run_tool(
    tool: &dyn RecoveryTool,
    corpus: &Corpus,
    reference: Option<&ReferenceOutputs>,
) -> ToolReport {
    let mut report = ToolReport {
        tool: tool.name().to_string(),
        ..Default::default()
    };
    for (ci, contract) in corpus.contracts.iter().enumerate() {
        let out: ToolOutput = tool.recover(&contract.code);
        for f in &contract.functions {
            report.total += 1;
            if out.aborted {
                report.aborted += 1;
                report.missing += 1;
                continue;
            }
            let hit = out
                .functions
                .iter()
                .find(|t| t.selector == f.declared.selector);
            let Some(params) = hit.and_then(|t| t.params.as_ref()) else {
                report.missing += 1;
                continue;
            };
            if *params == f.declared.params {
                report.correct += 1;
            } else if params.len() == f.declared.params.len() {
                report.wrong_types += 1;
            } else {
                report.wrong_count += 1;
            }
            if let Some(reference) = reference {
                if reference.get(&(ci, f.declared.selector.0)) == Some(params) {
                    report.agree_with_reference += 1;
                }
            }
        }
    }
    report
}

/// Collects a tool's outputs keyed for use as a comparison reference.
pub fn reference_outputs(
    tool: &dyn RecoveryTool,
    corpus: &Corpus,
) -> HashMap<(usize, [u8; 4]), Vec<sigrec_abi::AbiType>> {
    let mut map = HashMap::new();
    for (ci, contract) in corpus.contracts.iter().enumerate() {
        let out = tool.recover(&contract.code);
        for f in out.functions {
            if let Some(params) = f.params {
                map.insert((ci, f.selector.0), params);
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Efsd;
    use crate::tools::{DbTool, SigRecTool};
    use sigrec_corpus::datasets;

    #[test]
    fn sigrec_beats_empty_db_tool() {
        let corpus = datasets::dataset3(40, 17);
        let sigrec = SigRecTool::new();
        let db_tool = DbTool::new("OSD", Efsd::new(), 1.0);
        let a = run_tool(&sigrec, &corpus, None);
        let b = run_tool(&db_tool, &corpus, None);
        assert!(a.accuracy() > 0.9);
        assert_eq!(b.correct, 0, "empty database recovers nothing");
        assert_eq!(b.missing, b.total);
    }

    #[test]
    fn full_db_tool_is_perfect_by_construction() {
        let corpus = datasets::dataset3(15, 18);
        let db = Efsd::seeded_from(&corpus, 1.0, 0);
        let tool = DbTool::new("OSD", db, 1.0);
        let r = run_tool(&tool, &corpus, None);
        assert_eq!(r.correct, r.total);
    }

    #[test]
    fn agreement_with_reference() {
        let corpus = datasets::dataset3(10, 19);
        let sigrec = SigRecTool::new();
        let reference = reference_outputs(&sigrec, &corpus);
        let r = run_tool(&sigrec, &corpus, Some(&reference));
        assert_eq!(r.agree_with_reference, r.total, "self-agreement is total");
    }
}
