//! # sigrec-efsd
//!
//! The simulated Ethereum Function Signature Database and the five baseline
//! tools of the paper's §5.6 comparison (OSD, EBD, JEB as database lookups;
//! Eveem as database + simple heuristics; Gigahorse as database + a buggy
//! pattern matcher with its documented error classes), plus the comparison
//! harness that regenerates Tables 1–5.

#![warn(missing_docs)]

pub mod compare;
pub mod db;
pub mod tools;

pub use compare::{reference_outputs, run_tool, ToolReport};
pub use db::Efsd;
pub use tools::{
    DbTool, EveemTool, GigahorseTool, RecoveryTool, SigRecTool, ToolFunction, ToolOutput,
};
