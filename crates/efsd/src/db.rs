//! A simulated Ethereum Function Signature Database (EFSD).
//!
//! The real EFSD (4byte.directory and friends) maps 4-byte function ids to
//! known signatures, crowd-sourced from published source code. Its defining
//! property for the paper's comparison is *incompleteness*: more than 49 %
//! of open-source function signatures are not recorded (Table 3), and
//! closed-source coverage is far lower. [`Efsd`] is seeded from a corpus
//! with a configurable coverage fraction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sigrec_abi::{AbiType, FunctionSignature, Selector};
use sigrec_corpus::Corpus;
use std::collections::HashMap;

/// The signature database.
#[derive(Clone, Debug, Default)]
pub struct Efsd {
    entries: HashMap<Selector, Vec<AbiType>>,
}

impl Efsd {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a signature.
    pub fn insert(&mut self, sig: &FunctionSignature) {
        self.entries.insert(sig.selector, sig.params.clone());
    }

    /// Seeds the database with a `coverage` fraction of the corpus's
    /// signatures, chosen pseudo-randomly but deterministically.
    pub fn seeded_from(corpus: &Corpus, coverage: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Efsd::new();
        for (_, f) in corpus.functions() {
            if rng.gen_bool(coverage.clamp(0.0, 1.0)) {
                db.insert(&f.declared);
            }
        }
        db
    }

    /// Looks up the parameter list recorded for a function id.
    pub fn lookup(&self, selector: Selector) -> Option<&Vec<AbiType>> {
        self.entries.get(&selector)
    }

    /// Number of recorded signatures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no signatures are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigrec_corpus::datasets;

    #[test]
    fn insert_and_lookup() {
        let mut db = Efsd::new();
        let sig = FunctionSignature::parse("transfer(address,uint256)").unwrap();
        db.insert(&sig);
        assert_eq!(db.lookup(sig.selector), Some(&sig.params));
        assert!(db.lookup(Selector::from_u32(0)).is_none());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn coverage_fraction_respected() {
        let corpus = datasets::dataset3(100, 8);
        let total = corpus.function_count() as f64;
        let db = Efsd::seeded_from(&corpus, 0.5, 1);
        let frac = db.len() as f64 / total;
        // Duplicated selectors across contracts push the exact fraction
        // around; a loose window suffices.
        assert!(frac > 0.3 && frac < 0.7, "coverage fraction {frac}");
        let empty = Efsd::seeded_from(&corpus, 0.0, 1);
        assert!(empty.is_empty());
    }

    #[test]
    fn seeding_is_deterministic() {
        let corpus = datasets::dataset3(30, 8);
        let a = Efsd::seeded_from(&corpus, 0.5, 7);
        let b = Efsd::seeded_from(&corpus, 0.5, 7);
        assert_eq!(a.len(), b.len());
    }
}
