//! The recovery-tool abstraction and the five baselines of §5.6.
//!
//! Each baseline reproduces its real counterpart's *mechanism* and
//! documented failure modes:
//!
//! - **OSD / EBD / JEB** — pure database lookup. Their accuracy is exactly
//!   their database coverage; unknown ids yield nothing.
//! - **Eveem** — database lookup, falling back to a small heuristic rule
//!   set that handles basic types and one-dimensional dynamic arrays but
//!   has no struct/nested support and coarse width handling.
//! - **Gigahorse** — database lookup plus a pattern matcher with the §5.6
//!   error classes: wrong widths, merging consecutive parameters into one
//!   nonexistent wide type, phantom parameters, dropped parameters, and
//!   occasional aborts.

use crate::db::Efsd;
use sigrec_abi::{AbiType, Selector};
use sigrec_core::{extract_dispatch, SigRec};
use sigrec_evm::{keccak256, Disassembly, Opcode};

/// One function as reported by a tool.
#[derive(Clone, Debug)]
pub struct ToolFunction {
    /// The function id the tool found.
    pub selector: Selector,
    /// The parameter list the tool reports; `None` when the tool could not
    /// produce one for this function.
    pub params: Option<Vec<AbiType>>,
}

/// A tool's output for one contract.
#[derive(Clone, Debug, Default)]
pub struct ToolOutput {
    /// Reported functions.
    pub functions: Vec<ToolFunction>,
    /// True if the tool crashed on this contract (Gigahorse aborts on
    /// ~3.4 % of functions in the paper's runs).
    pub aborted: bool,
}

/// A signature-recovery tool under comparison.
pub trait RecoveryTool {
    /// Display name.
    fn name(&self) -> &str;
    /// Recovers function signatures from runtime bytecode.
    fn recover(&self, code: &[u8]) -> ToolOutput;
}

/// SigRec itself, adapted to the comparison interface.
pub struct SigRecTool {
    inner: SigRec,
}

impl SigRecTool {
    /// Wraps a default-config SigRec.
    pub fn new() -> Self {
        SigRecTool {
            inner: SigRec::new(),
        }
    }
}

impl Default for SigRecTool {
    fn default() -> Self {
        Self::new()
    }
}

impl RecoveryTool for SigRecTool {
    fn name(&self) -> &str {
        "SigRec"
    }

    fn recover(&self, code: &[u8]) -> ToolOutput {
        let functions = self
            .inner
            .recover(code)
            .into_iter()
            .map(|f| ToolFunction {
                selector: f.selector,
                params: Some(f.params),
            })
            .collect();
        ToolOutput {
            functions,
            aborted: false,
        }
    }
}

/// A database-only tool (OSD, EBD, JEB) with its own partial copy of the
/// database.
pub struct DbTool {
    name: String,
    db: Efsd,
    /// Per-tool fraction of the shared database this tool actually has
    /// (models the tools' differently stale snapshots).
    keep: f64,
}

impl DbTool {
    /// Creates a database-lookup tool holding `keep` of `db` (keyed
    /// deterministically per selector and tool name).
    pub fn new(name: &str, db: Efsd, keep: f64) -> Self {
        DbTool {
            name: name.to_string(),
            db,
            keep,
        }
    }

    fn has(&self, selector: Selector) -> bool {
        if self.keep >= 1.0 {
            return true;
        }
        // Stable per-(tool, selector) coin flip.
        let digest = keccak256(&[self.name.as_bytes(), &selector.0].concat());
        (digest[0] as f64 / 255.0) < self.keep
    }
}

impl RecoveryTool for DbTool {
    fn name(&self) -> &str {
        &self.name
    }

    fn recover(&self, code: &[u8]) -> ToolOutput {
        let disasm = Disassembly::new(code);
        let functions = extract_dispatch(&disasm)
            .into_iter()
            .map(|e| ToolFunction {
                selector: e.selector,
                params: if self.has(e.selector) {
                    self.db.lookup(e.selector).cloned()
                } else {
                    None
                },
            })
            .collect();
        ToolOutput {
            functions,
            aborted: false,
        }
    }
}

/// Eveem: database + simple heuristics.
pub struct EveemTool {
    db: Efsd,
}

impl EveemTool {
    /// Creates Eveem with its database snapshot.
    pub fn new(db: Efsd) -> Self {
        EveemTool { db }
    }

    /// Eveem's heuristic pass: a linear scan of the function body for
    /// `CALLDATALOAD`s at constant offsets (each becomes a parameter slot)
    /// with immediate-mask refinement, plus a crude dynamic-type guess.
    /// Handles neither multi-dimensional arrays nor structs/nested arrays,
    /// and confuses `bytes`/`string`/arrays with one another beyond the
    /// simplest shapes.
    fn heuristic(&self, disasm: &Disassembly, entry: usize, end: usize) -> Vec<AbiType> {
        let instrs = disasm.instructions();
        let Some(start_idx) = disasm.index_of(entry) else {
            return Vec::new();
        };
        let mut slots: Vec<(u64, AbiType)> = Vec::new();
        let mut dynamic_heads: Vec<u64> = Vec::new();
        let mut i = start_idx;
        while i < instrs.len() && instrs[i].pc < end {
            let ins = &instrs[i];
            if ins.opcode == Opcode::CallDataLoad && i > 0 {
                if let Some(off) = instrs[i - 1].push_value().and_then(|v| v.as_u64()) {
                    if off >= 4 {
                        // Look a couple of instructions ahead for a mask.
                        let ty = self.peek_mask(instrs, i + 1);
                        // Heuristic dynamic-type detection: the loaded word
                        // is immediately used as a base (ADD 4 then load).
                        let is_offsetish =
                            matches!(instrs.get(i + 1).map(|x| x.opcode), Some(Opcode::Push(_)))
                                && matches!(instrs.get(i + 2).map(|x| x.opcode), Some(Opcode::Add))
                                && matches!(
                                    instrs.get(i + 3).map(|x| x.opcode),
                                    Some(Opcode::CallDataLoad)
                                );
                        if is_offsetish {
                            if !dynamic_heads.contains(&off) {
                                dynamic_heads.push(off);
                                // Eveem's guess for anything dynamic.
                                slots.push((off, AbiType::DynArray(Box::new(AbiType::Uint(256)))));
                            }
                        } else if !slots.iter().any(|(o, _)| *o == off)
                            && !dynamic_heads.contains(&off)
                        {
                            slots.push((off, ty));
                        }
                    }
                }
            }
            i += 1;
        }
        slots.sort_by_key(|(o, _)| *o);
        slots.into_iter().map(|(_, t)| t).collect()
    }

    fn peek_mask(&self, instrs: &[sigrec_evm::Instruction], from: usize) -> AbiType {
        use sigrec_evm::U256;
        for j in from..(from + 3).min(instrs.len()) {
            match instrs[j].opcode {
                Opcode::And => {
                    // The mask is the closest preceding push.
                    if let Some(mask) = instrs[..j].iter().rev().find_map(|p| p.push_value()) {
                        let bits = mask.bits();
                        if mask == U256::low_mask(bits) && bits % 8 == 0 && bits > 0 {
                            // Eveem reads any 160-bit mask as an address —
                            // right for addresses, wrong for uint160.
                            return if bits == 160 {
                                AbiType::Address
                            } else {
                                AbiType::Uint(bits as u16)
                            };
                        }
                        // High mask: a fixed byte array of the mask's width.
                        for k in 1..=32u32 {
                            if mask == U256::high_mask(8 * k) {
                                return AbiType::FixedBytes(k as u8);
                            }
                        }
                        return AbiType::FixedBytes(32);
                    }
                }
                Opcode::IsZero => return AbiType::Bool,
                Opcode::Byte => return AbiType::FixedBytes(32),
                Opcode::SDiv | Opcode::SMod => return AbiType::Int(256),
                Opcode::SignExtend => {
                    // The byte index pushed just before gives the width.
                    if let Some(b) = instrs[..j]
                        .iter()
                        .rev()
                        .find_map(|p| p.push_value())
                        .and_then(|v| v.as_u64())
                    {
                        if b < 31 {
                            return AbiType::Int((8 * (b + 1)) as u16);
                        }
                    }
                    return AbiType::Int(256);
                }
                _ => {}
            }
        }
        AbiType::Uint(256)
    }
}

impl RecoveryTool for EveemTool {
    fn name(&self) -> &str {
        "Eveem"
    }

    fn recover(&self, code: &[u8]) -> ToolOutput {
        let disasm = Disassembly::new(code);
        let table = extract_dispatch(&disasm);
        let code_end = code.len();
        let mut functions = Vec::with_capacity(table.len());
        for (k, e) in table.iter().enumerate() {
            if let Some(known) = self.db.lookup(e.selector) {
                functions.push(ToolFunction {
                    selector: e.selector,
                    params: Some(known.clone()),
                });
                continue;
            }
            // Body spans to the next entry (entries are laid out in order).
            let end = table.get(k + 1).map(|n| n.entry).unwrap_or(code_end);
            let params = self.heuristic(&disasm, e.entry, end);
            functions.push(ToolFunction {
                selector: e.selector,
                params: Some(params),
            });
        }
        ToolOutput {
            functions,
            aborted: false,
        }
    }
}

/// Gigahorse: database plus a buggy pattern matcher (§5.6's observed error
/// classes), with occasional aborts.
pub struct GigahorseTool {
    db: Efsd,
    eveem_like: EveemTool,
}

impl GigahorseTool {
    /// Creates Gigahorse with its database snapshot.
    pub fn new(db: Efsd) -> Self {
        GigahorseTool {
            db: db.clone(),
            eveem_like: EveemTool::new(db),
        }
    }

    fn mangle(&self, selector: Selector, params: Vec<AbiType>) -> Vec<AbiType> {
        // Deterministic per-function "bug" selection.
        let digest = keccak256(&selector.0);
        match digest[1] % 5 {
            // Wrong width: bump a uint width by 8 (the uint2304-style bug
            // scaled down; widths may exceed 256 and become nonexistent).
            0 => params
                .into_iter()
                .map(|t| match t {
                    AbiType::Uint(m) => AbiType::Uint(m + 8),
                    other => other,
                })
                .collect(),
            // Merge consecutive params into one nonexistent wide uint.
            1 if params.len() >= 2 => {
                let merged: u16 = params.iter().map(|t| 8 * t.head_size() as u16).sum();
                vec![AbiType::Uint(merged)]
            }
            // Phantom extra parameter.
            2 => {
                let mut p = params;
                p.push(AbiType::Uint(256));
                p
            }
            // Dropped parameter.
            3 if !params.is_empty() => {
                let mut p = params;
                p.pop();
                p
            }
            _ => params,
        }
    }
}

impl RecoveryTool for GigahorseTool {
    fn name(&self) -> &str {
        "Gigahorse"
    }

    fn recover(&self, code: &[u8]) -> ToolOutput {
        // Aborts on ~3.4 % of contracts, deterministically by code hash.
        let digest = keccak256(code);
        if digest[0] < 9 {
            return ToolOutput {
                functions: Vec::new(),
                aborted: true,
            };
        }
        let disasm = Disassembly::new(code);
        let table = extract_dispatch(&disasm);
        let mut functions = Vec::with_capacity(table.len());
        for (k, e) in table.iter().enumerate() {
            if let Some(known) = self.db.lookup(e.selector) {
                functions.push(ToolFunction {
                    selector: e.selector,
                    params: Some(known.clone()),
                });
                continue;
            }
            let end = table.get(k + 1).map(|n| n.entry).unwrap_or(code.len());
            let raw = self.eveem_like.heuristic(&disasm, e.entry, end);
            let params = self.mangle(e.selector, raw);
            functions.push(ToolFunction {
                selector: e.selector,
                params: Some(params),
            });
        }
        ToolOutput {
            functions,
            aborted: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigrec_abi::FunctionSignature;
    use sigrec_solc::{compile_single, CompilerConfig, FunctionSpec, Visibility};

    fn contract(decl: &str) -> (FunctionSignature, Vec<u8>) {
        let sig = FunctionSignature::parse(decl).unwrap();
        let c = compile_single(
            FunctionSpec::new(sig.clone(), Visibility::External),
            &CompilerConfig::default(),
        );
        (sig, c.code)
    }

    #[test]
    fn db_tool_hits_only_known_ids() {
        let (sig, code) = contract("transfer(address,uint256)");
        let mut db = Efsd::new();
        db.insert(&sig);
        let tool = DbTool::new("OSD", db, 1.0);
        let out = tool.recover(&code);
        assert_eq!(out.functions.len(), 1);
        assert_eq!(
            out.functions[0].params.as_deref(),
            Some(sig.params.as_slice())
        );

        let empty_tool = DbTool::new("OSD", Efsd::new(), 1.0);
        let out = empty_tool.recover(&code);
        assert!(out.functions[0].params.is_none());
    }

    #[test]
    fn eveem_recovers_simple_basics_without_db() {
        let (sig, code) = contract("f(address,uint256)");
        let tool = EveemTool::new(Efsd::new());
        let out = tool.recover(&code);
        assert_eq!(out.functions.len(), 1);
        let params = out.functions[0].params.as_ref().unwrap();
        assert_eq!(params.as_slice(), sig.params.as_slice());
    }

    #[test]
    fn eveem_fails_on_structs() {
        let (sig, code) = contract("f((uint256[],uint256))");
        let tool = EveemTool::new(Efsd::new());
        let out = tool.recover(&code);
        let params = out.functions[0].params.as_ref().unwrap();
        assert_ne!(
            params.as_slice(),
            sig.params.as_slice(),
            "no struct support"
        );
    }

    #[test]
    fn gigahorse_mangles_unknown_ids() {
        // Collect errors over several functions: at least one must be
        // distorted.
        let mut mangled = 0;
        for decl in [
            "a(uint8)",
            "b(uint16,uint32)",
            "c(uint64)",
            "d(uint128,bool)",
        ] {
            let (sig, code) = contract(decl);
            let tool = GigahorseTool::new(Efsd::new());
            let out = tool.recover(&code);
            if out.aborted {
                mangled += 1;
                continue;
            }
            let params = out.functions[0].params.as_ref().unwrap();
            if params.as_slice() != sig.params.as_slice() {
                mangled += 1;
            }
        }
        assert!(mangled >= 1, "gigahorse error modes must fire");
    }

    #[test]
    fn sigrec_tool_wraps_pipeline() {
        let (sig, code) = contract("f(bool,bytes4)");
        let out = SigRecTool::new().recover(&code);
        assert_eq!(
            out.functions[0].params.as_deref(),
            Some(sig.params.as_slice())
        );
        assert_eq!(SigRecTool::new().name(), "SigRec");
    }
}
