//! Emission of parameter-access code.
//!
//! Each public/external function body is a faithful rendition of the
//! calldata-access idioms catalogued in §2.3.1 of the paper:
//!
//! - basic types: `CALLDATALOAD` + mask (`AND` low-mask for `uintM`,
//!   `SIGNEXTEND` for `intM`, double `ISZERO` for `bool`, `AND` high-mask
//!   for `bytesM`, `BYTE` for `bytes32`, 20-byte `AND` for `address`);
//! - external composites: on-demand `CALLDATALOAD` with `LT` bound checks,
//!   one per dimension, and offset/num-field chains for dynamic types;
//! - public composites: `CALLDATACOPY` into memory (single copy for one
//!   dimension, a guarded loop per extra dimension), then `MLOAD` access;
//! - `bytes`/`string`: length rounded up to a 32-byte multiple; `bytes` is
//!   additionally byte-accessed (the paper's R17 hint).
//!
//! Variable indices are modelled as `SLOAD`s of fresh slots: statically
//! unknown values, exactly the situation in which real contracts emit the
//! runtime bound checks SigRec's rules key on.

use crate::config::{CompilerConfig, Visibility};
use sigrec_abi::AbiType;
use sigrec_evm::{Assembler, Opcode, U256};

/// Emits the body of one function: access code for each parameter.
pub struct FnEmitter<'a> {
    asm: &'a mut Assembler,
    config: CompilerConfig,
    /// Bump allocator for memory copies (starts at the conventional 0x80).
    mem_next: u64,
    /// Next storage slot used as a symbolic index source.
    sym_slot: u64,
}

impl<'a> FnEmitter<'a> {
    /// Creates an emitter writing into `asm`.
    pub fn new(asm: &'a mut Assembler, config: CompilerConfig) -> Self {
        FnEmitter {
            asm,
            config,
            mem_next: 0x80,
            sym_slot: 0,
        }
    }

    /// Allocates `bytes` of scratch memory, rounded up to whole words.
    fn alloc(&mut self, bytes: u64) -> u64 {
        let addr = self.mem_next;
        self.mem_next += bytes.div_ceil(32) * 32;
        addr
    }

    /// Pushes a fresh statically-unknown index (an `SLOAD` of a fresh slot).
    fn push_sym_index(&mut self) {
        self.asm.push_u64(self.sym_slot).op(Opcode::SLoad);
        self.sym_slot += 1;
    }

    /// Consumes a boolean on the stack top: continue if true, revert
    /// otherwise (the bound-check shape).
    fn guard(&mut self) {
        let ok = self.asm.fresh_label();
        self.asm.push_label(ok).op(Opcode::JumpI);
        self.asm.push_u64(0).push_u64(0).op(Opcode::Revert);
        self.asm.jumpdest(ok);
    }

    /// Emits `index < bound` for a fresh symbolic index against a constant
    /// bound, guarded. Returns nothing on the stack.
    fn bound_check_const(&mut self, bound: u64) {
        self.asm.push_u64(bound);
        self.push_sym_index();
        self.asm.op(Opcode::Lt);
        self.guard();
    }

    /// Emits the access code for one parameter.
    ///
    /// `head` is the byte offset of the parameter's head *within the
    /// argument area* (i.e. not counting the 4-byte selector).
    pub fn param(&mut self, ty: &AbiType, head: u64, vis: Visibility) {
        match ty {
            AbiType::Uint(_)
            | AbiType::Int(_)
            | AbiType::Address
            | AbiType::Bool
            | AbiType::FixedBytes(_) => self.basic_param(ty, head),
            AbiType::Bytes => self.bytes_like_param(head, vis, true),
            AbiType::String => self.bytes_like_param(head, vis, false),
            AbiType::Array(..) if ty.is_static_array() => match vis {
                Visibility::Public => self.static_array_public(ty, head),
                Visibility::External => self.static_array_external(ty, head),
            },
            AbiType::DynArray(_) if ty.is_dynamic_array() => match vis {
                Visibility::Public => self.dynamic_array_public(ty, head),
                Visibility::External => self.dynamic_array_external(ty, head),
            },
            // Nested arrays and dynamic structs: identical pattern in both
            // modes (§2.3.1), on-demand reads through offset chains.
            AbiType::Array(..) | AbiType::DynArray(_) | AbiType::Tuple(_) => {
                self.offset_chain_param(ty, head)
            }
        }
    }

    // ---- basic types ------------------------------------------------

    /// `CALLDATALOAD` + type-specific mask + consumption.
    fn basic_param(&mut self, ty: &AbiType, head: u64) {
        self.asm.push_u64(4 + head).op(Opcode::CallDataLoad);
        self.consume_basic(ty);
    }

    /// Consumes a basic-typed word on the stack top, leaving the stack as
    /// it was. The consumption is what produces the fine-grained hints
    /// (R11–R18).
    fn consume_basic(&mut self, ty: &AbiType) {
        if self.config.obfuscate {
            return self.consume_basic_obfuscated(ty);
        }
        match ty {
            AbiType::Uint(256) => {
                // Plain arithmetic use: stays uint256 (R4, no refinement).
                self.asm.push_u64(1).op(Opcode::Add).op(Opcode::Pop);
            }
            AbiType::Uint(m) => {
                // AND low-mask (R11), plus arithmetic so a 160-bit uint is
                // not mistaken for an address (R16).
                self.asm
                    .push_sized(U256::low_mask(*m as u32), (*m as usize) / 8);
                self.asm.op(Opcode::And);
                self.asm.push_u64(1).op(Opcode::Add).op(Opcode::Pop);
            }
            AbiType::Int(256) => {
                // Signed use (R15).
                self.asm.op(Opcode::Dup(1)).op(Opcode::SDiv).op(Opcode::Pop);
            }
            AbiType::Int(m) => {
                // SIGNEXTEND mask (R13).
                self.asm
                    .push_u64((*m as u64) / 8 - 1)
                    .op(Opcode::SignExtend)
                    .op(Opcode::Pop);
            }
            AbiType::Address => {
                // 20-byte AND, and *no* arithmetic (R16).
                self.asm.push_sized(U256::low_mask(160), 20);
                self.asm.op(Opcode::And).op(Opcode::Pop);
            }
            AbiType::Bool => {
                // Double ISZERO (R14).
                self.asm
                    .op(Opcode::IsZero)
                    .op(Opcode::IsZero)
                    .op(Opcode::Pop);
            }
            AbiType::FixedBytes(32) => {
                // Single-byte access (R18) distinguishes bytes32 from uint256.
                self.asm.push_u64(0).op(Opcode::Byte).op(Opcode::Pop);
            }
            AbiType::FixedBytes(m) => {
                // AND high-mask (R12).
                self.asm.push_sized(U256::high_mask(8 * *m as u32), 32);
                self.asm.op(Opcode::And).op(Opcode::Pop);
            }
            other => unreachable!("consume_basic on non-basic type {other}"),
        }
    }

    /// Semantically equivalent consumption with different instruction
    /// sequences (the §7 obfuscation scenario): masks become shift pairs,
    /// `bool`'s double `ISZERO` becomes `EQ 0` + `ISZERO`.
    fn consume_basic_obfuscated(&mut self, ty: &AbiType) {
        match ty {
            AbiType::Uint(256) => {
                self.asm.push_u64(1).op(Opcode::Add).op(Opcode::Pop);
            }
            AbiType::Uint(m) => {
                // x << (256-M) >> (256-M) keeps the low M bits.
                let k = 256 - *m as u64;
                self.asm.push_u64(k).op(Opcode::Shl);
                self.asm.push_u64(k).op(Opcode::Shr);
                self.asm.push_u64(1).op(Opcode::Add).op(Opcode::Pop);
            }
            AbiType::Int(256) => {
                self.asm.op(Opcode::Dup(1)).op(Opcode::SDiv).op(Opcode::Pop);
            }
            AbiType::Int(m) => {
                // x << (256-M) sar (256-M) sign-extends from bit M-1.
                let k = 256 - *m as u64;
                self.asm.push_u64(k).op(Opcode::Shl);
                self.asm.push_u64(k).op(Opcode::Sar);
                self.asm.op(Opcode::Pop);
            }
            AbiType::Address => {
                self.asm.push_u64(96).op(Opcode::Shl);
                self.asm.push_u64(96).op(Opcode::Shr);
                self.asm.op(Opcode::Pop);
            }
            AbiType::Bool => {
                // EQ(x, 0) is ISZERO in disguise; the second negation stays.
                self.asm
                    .push_u64(0)
                    .op(Opcode::Eq)
                    .op(Opcode::IsZero)
                    .op(Opcode::Pop);
            }
            AbiType::FixedBytes(32) => {
                self.asm.push_u64(0).op(Opcode::Byte).op(Opcode::Pop);
            }
            AbiType::FixedBytes(m) => {
                // x >> (256-8M) << (256-8M) keeps the high M bytes.
                let k = 256 - 8 * *m as u64;
                self.asm.push_u64(k).op(Opcode::Shr);
                self.asm.push_u64(k).op(Opcode::Shl);
                self.asm.op(Opcode::Pop);
            }
            other => unreachable!("consume_basic_obfuscated on non-basic type {other}"),
        }
    }

    // ---- static arrays ----------------------------------------------

    /// Outer-first dimension list of a static array, and its basic element
    /// type: `uint8[3][2]` → (`[2, 3]`, `uint8`).
    fn static_dims(ty: &AbiType) -> (Vec<u64>, &AbiType) {
        let mut dims = Vec::new();
        let mut cur = ty;
        while let AbiType::Array(el, n) = cur {
            dims.push(*n as u64);
            cur = el;
        }
        (dims, cur)
    }

    /// External mode (§2.3.1 2(1)(b)): one `LT` bound check per dimension
    /// (outermost first), then `CALLDATALOAD` at
    /// `4 + head + flat_index * 32`.
    fn static_array_external(&mut self, ty: &AbiType, head: u64) {
        let (dims, el) = Self::static_dims(ty);
        let first_slot = self.sym_slot;
        for &d in &dims {
            self.bound_check_const(d);
        }
        // flat = ((i0 * d1 + i1) * d2 + i2) ...
        self.asm.push_u64(first_slot).op(Opcode::SLoad);
        for (k, &d) in dims.iter().enumerate().skip(1) {
            self.asm.push_u64(d).op(Opcode::Mul);
            self.asm.push_u64(first_slot + k as u64).op(Opcode::SLoad);
            self.asm.op(Opcode::Add);
        }
        self.asm.push_u64(32).op(Opcode::Mul);
        self.asm.push_u64(4 + head).op(Opcode::Add);
        self.asm.op(Opcode::CallDataLoad);
        self.consume_basic(el);
    }

    /// Optimised constant-index access (the paper's error case 5): no bound
    /// checks, constant location — indistinguishable from a plain word read.
    pub fn static_array_external_const_index(&mut self, ty: &AbiType, head: u64) {
        let _ = Self::static_dims(ty);
        // A single constant-location word read, used arithmetically: the
        // compile-time-checked access leaves nothing that distinguishes it
        // from a plain uint256 (the paper's case-5 degradation).
        self.asm.push_u64(4 + head).op(Opcode::CallDataLoad);
        self.asm.push_u64(1).op(Opcode::Add).op(Opcode::Pop);
    }

    /// Public mode (§2.3.1 2(1)(a), Listing 1): `CALLDATACOPY` of the
    /// lowest dimension inside a nested loop, one level per extra
    /// dimension; then `MLOAD` element access.
    fn static_array_public(&mut self, ty: &AbiType, head: u64) {
        let (dims, el) = Self::static_dims(ty);
        let total: u64 = dims.iter().product::<u64>() * 32;
        let dst = self.alloc(total);
        let block = *dims.last().expect("static array has >= 1 dimension") * 32;
        let loop_dims = &dims[..dims.len() - 1];
        self.copy_loops(loop_dims, |this, depth_extra| {
            // flat block offset from the loop counters currently stacked.
            this.flat_from_counters(loop_dims, depth_extra);
            this.asm.push_u64(block).op(Opcode::Mul);
            // [.., off] → CALLDATACOPY(dst + off, 4 + head + off, block)
            this.asm.op(Opcode::Dup(1));
            this.asm.push_u64(4 + head).op(Opcode::Add); // src
            this.asm.push_u64(block); // len
            this.asm.op(Opcode::Swap(2)); // [len, src, off]
            this.asm.push_u64(dst).op(Opcode::Add); // dst
            this.asm.op(Opcode::CallDataCopy);
        });
        // Element use: MLOAD the first element and consume it as `el`.
        self.asm.push_u64(dst).op(Opcode::MLoad);
        self.consume_basic(el);
    }

    /// Runs `body` inside `dims.len()` nested counting loops (`i < dim`
    /// guards, counters kept on the stack). With no dims, runs `body` once.
    /// `body` receives the number of extra stack slots it has pushed below
    /// itself (always 0 here) — counters sit at depths 1..=L when it runs.
    fn copy_loops(&mut self, dims: &[u64], body: impl FnOnce(&mut Self, usize)) {
        let mut heads = Vec::new();
        let mut exits = Vec::new();
        for &d in dims {
            let head = self.asm.fresh_label();
            let exit = self.asm.fresh_label();
            self.asm.push_u64(0); // counter
            self.asm.jumpdest(head);
            // while (i < d)
            self.asm
                .op(Opcode::Dup(1))
                .push_u64(d)
                .op(Opcode::Swap(1))
                .op(Opcode::Lt);
            self.asm
                .op(Opcode::IsZero)
                .push_label(exit)
                .op(Opcode::JumpI);
            heads.push(head);
            exits.push(exit);
        }
        body(self, 0);
        for (&head, &exit) in heads.iter().zip(&exits).rev() {
            self.asm.push_u64(1).op(Opcode::Add); // i += 1
            self.asm.push_label(head).op(Opcode::Jump);
            self.asm.jumpdest(exit);
            self.asm.op(Opcode::Pop); // drop counter
        }
    }

    /// Computes `((i0 * d1 + i1) * d2 + i2)…` from loop counters stacked at
    /// depths `extra+1 ..= extra+L` (top counter shallowest), leaving the
    /// flat index on top.
    fn flat_from_counters(&mut self, dims: &[u64], extra: usize) {
        let l = dims.len();
        if l == 0 {
            self.asm.push_u64(0);
            return;
        }
        // i0 is deepest: depth = extra + L.
        self.asm.op(Opcode::Dup((extra + l) as u8));
        for (j, &d) in dims.iter().enumerate().skip(1) {
            self.asm.push_u64(d).op(Opcode::Mul);
            // i_j originally at depth extra + L - j; the accumulator adds 1.
            self.asm.op(Opcode::Dup((extra + l - j + 1) as u8));
            self.asm.op(Opcode::Add);
        }
    }

    // ---- dynamic arrays ---------------------------------------------

    /// Dimension list of a dynamic array after the dynamic outermost
    /// dimension, outer-first, plus the basic element type:
    /// `uint8[3][]` → (`[3]`, `uint8`).
    fn dyn_inner_dims(ty: &AbiType) -> (Vec<u64>, &AbiType) {
        match ty {
            AbiType::DynArray(el) => Self::static_dims(el),
            _ => unreachable!("dyn_inner_dims on non-dynamic array"),
        }
    }

    /// External mode (§2.3.1 2(2)(b)): `CALLDATALOAD`s for the offset and
    /// num fields (R1), a symbolic bound check against num plus constant
    /// checks for inner dims (R2's v3), and an item read whose location
    /// contains the offset and a ×32 (R2's v1, v2).
    fn dynamic_array_external(&mut self, ty: &AbiType, head: u64) {
        let (inner, el) = Self::dyn_inner_dims(ty);
        // num1 = CALLDATALOAD(CALLDATALOAD(4+head) + 4)
        self.asm.push_u64(4 + head).op(Opcode::CallDataLoad);
        self.asm
            .push_u64(4)
            .op(Opcode::Add)
            .op(Opcode::CallDataLoad);
        let first_slot = self.sym_slot;
        self.push_sym_index();
        self.asm.op(Opcode::Lt); // i0 < num1
        self.guard();
        for &d in &inner {
            self.bound_check_const(d);
        }
        // flat index over [i0, inner dims…]
        self.asm.push_u64(first_slot).op(Opcode::SLoad);
        for (k, &d) in inner.iter().enumerate() {
            self.asm.push_u64(d).op(Opcode::Mul);
            self.asm
                .push_u64(first_slot + 1 + k as u64)
                .op(Opcode::SLoad);
            self.asm.op(Opcode::Add);
        }
        self.asm.push_u64(32).op(Opcode::Mul);
        self.asm
            .push_u64(4 + head)
            .op(Opcode::CallDataLoad)
            .op(Opcode::Add);
        self.asm.push_u64(36).op(Opcode::Add); // skip selector-relative base + num
        self.asm.op(Opcode::CallDataLoad);
        self.consume_basic(el);
    }

    /// Public mode (§2.3.1 2(2)(a)): read offset and num (R1), `MSTORE`
    /// the num, then `CALLDATACOPY` the items — a single copy of
    /// `num × 32` bytes for one dimension (R7), a num-bounded loop copying
    /// the inner static block otherwise (R10).
    fn dynamic_array_public(&mut self, ty: &AbiType, head: u64) {
        let (inner, el) = Self::dyn_inner_dims(ty);
        let num_addr = self.alloc(32);
        let x_addr = self.alloc(32);
        let data = self.alloc(32 * 64); // generous scratch region
                                        // x = CALLDATALOAD(4+head); num = CALLDATALOAD(x+4)
        self.asm.push_u64(4 + head).op(Opcode::CallDataLoad);
        self.asm
            .op(Opcode::Dup(1))
            .push_u64(4)
            .op(Opcode::Add)
            .op(Opcode::CallDataLoad);
        // MSTORE(num_addr, num); MSTORE(x_addr, x)
        self.asm.push_u64(num_addr).op(Opcode::MStore);
        self.asm.push_u64(x_addr).op(Opcode::MStore);
        if inner.is_empty() {
            // One CALLDATACOPY of num*32 bytes (R7).
            self.asm.push_u64(num_addr).op(Opcode::MLoad);
            self.asm.push_u64(32).op(Opcode::Mul); // len = num*32
            self.asm.push_u64(x_addr).op(Opcode::MLoad);
            self.asm.push_u64(36).op(Opcode::Add); // src = x + 4 + 32
            self.asm.push_u64(data); // dst
            self.asm.op(Opcode::CallDataCopy);
            self.asm.push_u64(data).op(Opcode::MLoad);
            self.consume_basic(el);
        } else {
            // Loop i < num (plus constant loops for middle dims), copying
            // the lowest static block each iteration (R10). Element use
            // happens inside the loop — as in real code, items are only
            // touched when the bound check passed.
            let block = *inner.last().unwrap() * 32;
            let mid = &inner[..inner.len() - 1];
            let el = el.clone();
            self.dyn_copy_loop(num_addr, x_addr, data, mid, block, &el);
        }
    }

    /// The guarded copy loop of a multi-dimensional dynamic array: the
    /// outer bound is the in-memory num, inner bounds are constants; each
    /// iteration copies one block and touches its first element.
    fn dyn_copy_loop(
        &mut self,
        num_addr: u64,
        x_addr: u64,
        data: u64,
        mid: &[u64],
        block: u64,
        el: &AbiType,
    ) {
        let head = self.asm.fresh_label();
        let exit = self.asm.fresh_label();
        self.asm.push_u64(0);
        self.asm.jumpdest(head);
        // while (i < MLOAD(num_addr))
        self.asm.op(Opcode::Dup(1));
        self.asm.push_u64(num_addr).op(Opcode::MLoad);
        self.asm.op(Opcode::Swap(1)).op(Opcode::Lt);
        self.asm
            .op(Opcode::IsZero)
            .push_label(exit)
            .op(Opcode::JumpI);
        let mid = mid.to_vec();
        self.copy_loops(&mid, |this, _| {
            // Block index = ((i * m1 + j1) * m2 + j2)… over outer counter i
            // (depth L+1 once the L mid counters are stacked) and mids.
            let l = mid.len();
            this.asm.op(Opcode::Dup((l + 1) as u8)); // i
            for (k, &m) in mid.iter().enumerate() {
                this.asm.push_u64(m).op(Opcode::Mul);
                this.asm.op(Opcode::Dup((l - k + 1) as u8));
                this.asm.op(Opcode::Add);
            }
            this.asm.push_u64(block).op(Opcode::Mul); // byte offset
            this.asm.op(Opcode::Dup(1));
            // src = x + 36 + off
            this.asm.push_u64(x_addr).op(Opcode::MLoad).op(Opcode::Add);
            this.asm.push_u64(36).op(Opcode::Add);
            this.asm.push_u64(block); // len
            this.asm.op(Opcode::Swap(2)); // [len, src, off]
            this.asm.push_u64(data).op(Opcode::Add);
            this.asm.op(Opcode::CallDataCopy);
            // Use the first element of the block just copied.
            this.asm.push_u64(data).op(Opcode::MLoad);
            this.consume_basic(el);
        });
        self.asm.push_u64(1).op(Opcode::Add);
        self.asm.push_label(head).op(Opcode::Jump);
        self.asm.jumpdest(exit);
        self.asm.op(Opcode::Pop);
    }

    // ---- bytes / string ---------------------------------------------

    /// `bytes`/`string` access (§2.3.1 3–4). Public mode, and external
    /// `string`: copy the padded payload (length rounded up to a word
    /// multiple — R8's hint). External `bytes`: byte-granular on-demand
    /// read (no ×32 in the location — R17's hint). `bytes` additionally
    /// byte-accesses the copied payload.
    fn bytes_like_param(&mut self, head: u64, vis: Visibility, is_bytes: bool) {
        if is_bytes && vis == Visibility::External {
            // x = CDL(4+head); num = CDL(x+4); i < num; CDL(x + 36 + i).
            self.asm.push_u64(4 + head).op(Opcode::CallDataLoad);
            self.asm
                .push_u64(4)
                .op(Opcode::Add)
                .op(Opcode::CallDataLoad);
            let slot = self.sym_slot;
            self.push_sym_index();
            self.asm.op(Opcode::Lt);
            self.guard();
            self.asm.push_u64(slot).op(Opcode::SLoad);
            self.asm
                .push_u64(4 + head)
                .op(Opcode::CallDataLoad)
                .op(Opcode::Add);
            self.asm.push_u64(36).op(Opcode::Add);
            self.asm.op(Opcode::CallDataLoad);
            self.asm.push_u64(0).op(Opcode::Byte).op(Opcode::Pop);
            return;
        }
        let num_addr = self.alloc(32);
        let data = self.alloc(32 * 64);
        // x = CDL(4+head); num = CDL(x+4)
        self.asm.push_u64(4 + head).op(Opcode::CallDataLoad);
        self.asm
            .op(Opcode::Dup(1))
            .push_u64(4)
            .op(Opcode::Add)
            .op(Opcode::CallDataLoad);
        self.asm
            .op(Opcode::Dup(1))
            .push_u64(num_addr)
            .op(Opcode::MStore);
        // padded = (num + 31) / 32 * 32
        self.asm.push_u64(31).op(Opcode::Add);
        self.asm.push_u64(32).op(Opcode::Swap(1)).op(Opcode::Div);
        self.asm.push_u64(32).op(Opcode::Mul);
        // [x, padded] → CALLDATACOPY(data, x + 36, padded)
        self.asm.op(Opcode::Swap(1)).push_u64(36).op(Opcode::Add); // src
        self.asm.push_u64(data); // [len, src, dst]
        self.asm.op(Opcode::CallDataCopy);
        if is_bytes {
            // Byte-granular use of the payload (R17).
            self.asm.push_u64(data).op(Opcode::MLoad);
            self.asm.push_u64(0).op(Opcode::Byte).op(Opcode::Pop);
        }
    }

    // ---- nested arrays and dynamic structs ---------------------------

    /// On-demand access through offset chains — the shared pattern of
    /// nested arrays and dynamic structs, identical in public and external
    /// mode. Starts from the parameter's offset field and recurses along
    /// one leaf path per dynamic component, emitting a num read, a bound
    /// check, and an offset hop per dimension.
    fn offset_chain_param(&mut self, ty: &AbiType, head: u64) {
        if ty.is_dynamic() {
            // base = CDL(4+head) + 4 (absolute position of the content).
            self.asm.push_u64(4 + head).op(Opcode::CallDataLoad);
            self.asm.push_u64(4).op(Opcode::Add);
            self.descend(ty);
        } else {
            // A static composite at an inline position.
            self.asm.push_u64(4 + head);
            self.descend(ty);
        }
    }

    /// With the absolute base of `ty`'s content on the stack, emits reads
    /// down to one leaf, consuming the base.
    fn descend(&mut self, ty: &AbiType) {
        match ty {
            AbiType::DynArray(el) => {
                // [base] ; num = CDL(base); i < num.
                self.asm.op(Opcode::Dup(1)).op(Opcode::CallDataLoad);
                let slot = self.sym_slot;
                self.push_sym_index();
                self.asm.op(Opcode::Lt);
                self.guard();
                if el.is_dynamic() {
                    // inner = (base+32) + CDL((base+32) + i*32)
                    self.asm.push_u64(32).op(Opcode::Add); // s = base+32
                    self.asm.op(Opcode::Dup(1));
                    self.asm.push_u64(32);
                    self.asm.push_u64(slot).op(Opcode::SLoad).op(Opcode::Mul);
                    self.asm.op(Opcode::Add).op(Opcode::CallDataLoad);
                    self.asm.op(Opcode::Add);
                    self.descend(el);
                } else {
                    // item pos = base + 32 + i*stride
                    let stride = el.head_size() as u64;
                    self.asm.push_u64(stride);
                    self.asm.push_u64(slot).op(Opcode::SLoad).op(Opcode::Mul);
                    self.asm.op(Opcode::Add).push_u64(32).op(Opcode::Add);
                    self.descend_static(el);
                }
            }
            AbiType::Array(el, n) => {
                let slot = self.sym_slot;
                self.bound_check_const(*n as u64);
                if el.is_dynamic() {
                    // inner = base + CDL(base + i*32)
                    self.asm.op(Opcode::Dup(1));
                    self.asm.push_u64(32);
                    self.asm.push_u64(slot).op(Opcode::SLoad).op(Opcode::Mul);
                    self.asm.op(Opcode::Add).op(Opcode::CallDataLoad);
                    self.asm.op(Opcode::Add);
                    self.descend(el);
                } else {
                    let stride = el.head_size() as u64;
                    self.asm.push_u64(stride);
                    self.asm.push_u64(slot).op(Opcode::SLoad).op(Opcode::Mul);
                    self.asm.op(Opcode::Add);
                    self.descend_static(el);
                }
            }
            AbiType::Tuple(members) => {
                // Dynamic struct: visit every member relative to base.
                let mut mhead = 0u64;
                for m in members {
                    if m.is_dynamic() {
                        // inner = base + CDL(base + mhead)
                        self.asm.op(Opcode::Dup(1)).op(Opcode::Dup(1));
                        self.asm
                            .push_u64(mhead)
                            .op(Opcode::Add)
                            .op(Opcode::CallDataLoad);
                        self.asm.op(Opcode::Add);
                        self.descend(m);
                    } else if m.is_basic() {
                        self.asm.op(Opcode::Dup(1));
                        self.asm
                            .push_u64(mhead)
                            .op(Opcode::Add)
                            .op(Opcode::CallDataLoad);
                        self.consume_basic(m);
                    } else {
                        // Static composite member: descend at its position.
                        self.asm.op(Opcode::Dup(1));
                        self.asm.push_u64(mhead).op(Opcode::Add);
                        self.descend_static(m);
                    }
                    mhead += m.head_size() as u64;
                }
                self.asm.op(Opcode::Pop); // drop base
            }
            AbiType::Bytes => {
                // [base] ; num = CDL(base); i < num; byte at base + 32 + i.
                self.asm.op(Opcode::Dup(1)).op(Opcode::CallDataLoad);
                let slot = self.sym_slot;
                self.push_sym_index();
                self.asm.op(Opcode::Lt);
                self.guard();
                self.asm.push_u64(slot).op(Opcode::SLoad).op(Opcode::Add);
                self.asm.push_u64(32).op(Opcode::Add);
                self.asm.op(Opcode::CallDataLoad);
                self.asm.push_u64(0).op(Opcode::Byte).op(Opcode::Pop);
            }
            AbiType::String => {
                // [base]; num = CDL(base); copy padded payload.
                let data = self.alloc(32 * 64);
                self.asm.op(Opcode::Dup(1)).op(Opcode::CallDataLoad);
                self.asm.push_u64(31).op(Opcode::Add);
                self.asm.push_u64(32).op(Opcode::Swap(1)).op(Opcode::Div);
                self.asm.push_u64(32).op(Opcode::Mul);
                self.asm.op(Opcode::Swap(1)).push_u64(32).op(Opcode::Add); // src = base+32
                self.asm.push_u64(data);
                self.asm.op(Opcode::CallDataCopy);
            }
            basic => {
                // [pos]: a basic leaf at an absolute position.
                self.asm.op(Opcode::CallDataLoad);
                self.consume_basic(basic);
            }
        }
    }

    /// Descends into a *static* composite whose absolute position is on the
    /// stack (no offset hops inside).
    fn descend_static(&mut self, ty: &AbiType) {
        match ty {
            AbiType::Array(el, n) => {
                let slot = self.sym_slot;
                self.bound_check_const(*n as u64);
                let stride = el.head_size() as u64;
                self.asm.push_u64(stride);
                self.asm.push_u64(slot).op(Opcode::SLoad).op(Opcode::Mul);
                self.asm.op(Opcode::Add);
                self.descend_static(el);
            }
            AbiType::Tuple(members) => {
                let mut mhead = 0u64;
                for m in members {
                    self.asm.op(Opcode::Dup(1));
                    self.asm.push_u64(mhead).op(Opcode::Add);
                    self.descend_static(m);
                    mhead += m.head_size() as u64;
                }
                self.asm.op(Opcode::Pop);
            }
            basic => {
                self.asm.op(Opcode::CallDataLoad);
                self.consume_basic(basic);
            }
        }
    }

    /// Reads `count` undeclared words straight from the call data — the
    /// inline-assembly quirk (error case 1).
    pub fn inline_assembly_reads(&mut self, start: u64, count: u64) {
        for k in 0..count {
            self.asm.push_u64(start + 32 * k).op(Opcode::CallDataLoad);
            self.asm.push_u64(1).op(Opcode::Add).op(Opcode::Pop);
        }
    }

    /// Reads the parameter's head word and uses it as a storage key — the
    /// `storage`-modifier quirk (error case 4).
    pub fn storage_pointer_read(&mut self, head: u64) {
        self.asm.push_u64(4 + head).op(Opcode::CallDataLoad);
        self.asm.push_u64(1).op(Opcode::Add); // arithmetic use: plain uint256
        self.asm.op(Opcode::SLoad).op(Opcode::Pop);
    }

    /// The compiler configuration this emitter honours.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }
}
