//! # sigrec-solc
//!
//! A miniature Solidity ABI back-end: given function signatures, emits EVM
//! runtime bytecode exhibiting the calldata-access patterns real Solidity
//! compilers produce (§2.3.1 of the SigRec paper) — the substrate on which
//! the recovery corpus is built.
//!
//! The generator models the version-dependent idioms the paper's RQ2 sweeps
//! ([`SolcVersion`]): `DIV`- vs `SHR`-based selector dispatch, the
//! `CALLVALUE` guard, and the optimisation that elides bound checks for
//! constant-index static-array accesses. The paper's residual error cases
//! (§5.2) are injectable per function via [`Quirk`].

#![warn(missing_docs)]

pub mod config;
pub mod contract;
pub mod emit;
pub mod spec;

pub use config::{CompilerConfig, SolcVersion, Visibility};
pub use contract::{
    compile, compile_single, compile_with_variant, CompiledContract, DispatcherShape, EmitVariant,
};
pub use emit::FnEmitter;
pub use spec::{expected_recovery, FunctionSpec, Quirk};
