//! Compiler-version and optimisation knobs.
//!
//! RQ2 of the paper sweeps 155 Solidity compiler versions with and without
//! optimisation and finds accuracy stable, because the calldata-access
//! *patterns* are stable across versions. [`SolcVersion`] models the
//! version-dependent differences that do exist and that the paper names:
//!
//! - selector dispatch via `DIV 2²²⁴` (pre-0.5) vs `SHR 224` (0.5+);
//! - a `CALLVALUE` non-payable guard emitted by 0.4.22+;
//! - optimisation eliding runtime bound checks for constant-index static
//!   array accesses in external functions (the paper's error case 5).

use std::fmt;

/// A Solidity compiler version, by the era of its code-generation idioms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SolcVersion {
    /// Minor version (the `x` in `0.x.y`), 1..=8.
    pub minor: u8,
    /// Patch version.
    pub patch: u8,
}

impl SolcVersion {
    /// A representative modern version (0.8.0).
    pub const V0_8_0: SolcVersion = SolcVersion { minor: 8, patch: 0 };
    /// A representative legacy version (0.4.24).
    pub const V0_4_24: SolcVersion = SolcVersion {
        minor: 4,
        patch: 24,
    };
    /// The paper's dataset-2 compiler (0.5.5).
    pub const V0_5_5: SolcVersion = SolcVersion { minor: 5, patch: 5 };

    /// Pre-0.5 compilers move the selector down with `DIV`; later ones use
    /// `SHR` (introduced with the Constantinople opcodes).
    pub fn uses_shr_dispatch(&self) -> bool {
        self.minor >= 5
    }

    /// 0.4.22+ emit a `CALLVALUE` guard for non-payable functions.
    pub fn emits_callvalue_guard(&self) -> bool {
        self.minor > 4 || (self.minor == 4 && self.patch >= 22)
    }

    /// ABIEncoderV2 (structs and nested arrays as parameters) is available
    /// from 0.4.19.
    pub fn supports_abiencoderv2(&self) -> bool {
        self.minor > 4 || (self.minor == 4 && self.patch >= 19)
    }

    /// The version sweep used by the Fig. 15 experiment: a ladder of
    /// representative versions from 0.1.1 to 0.8.0.
    pub fn sweep() -> Vec<SolcVersion> {
        let mut out = Vec::new();
        for minor in 1..=8u8 {
            let patches: &[u8] = match minor {
                1 => &[1, 7],
                2 => &[0, 2],
                3 => &[6],
                4 => &[0, 11, 19, 22, 24, 26],
                5 => &[0, 5, 17],
                6 => &[0, 12],
                7 => &[0, 6],
                8 => &[0],
                _ => unreachable!(),
            };
            for &patch in patches {
                out.push(SolcVersion { minor, patch });
            }
        }
        out
    }
}

impl fmt::Display for SolcVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0.{}.{}", self.minor, self.patch)
    }
}

/// Full code-generation configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CompilerConfig {
    /// Compiler version.
    pub version: SolcVersion,
    /// Whether the optimiser is on (affects constant-index bound checks).
    pub optimize: bool,
    /// Emit semantically equivalent but syntactically different masking
    /// sequences (shift pairs instead of `AND`/`SIGNEXTEND`, `EQ 0` instead
    /// of `ISZERO`) — the obfuscation scenario of the paper's §7
    /// discussion.
    pub obfuscate: bool,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            version: SolcVersion::V0_8_0,
            optimize: false,
            obfuscate: false,
        }
    }
}

impl CompilerConfig {
    /// Convenience constructor.
    pub fn new(version: SolcVersion, optimize: bool) -> Self {
        CompilerConfig {
            version,
            optimize,
            obfuscate: false,
        }
    }

    /// Turns on obfuscated emission (builder style).
    pub fn obfuscated(mut self) -> Self {
        self.obfuscate = true;
        self
    }
}

/// Solidity function visibility, as far as calldata handling is concerned.
///
/// Public functions copy composite parameters into memory with
/// `CALLDATACOPY`; external functions read items on demand with
/// `CALLDATALOAD` (§2.3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Visibility {
    /// `public`: memory-copy access patterns.
    Public,
    /// `external`: on-demand calldata reads.
    External,
}

impl fmt::Display for Visibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Visibility::Public => f.write_str("public"),
            Visibility::External => f.write_str("external"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_era() {
        assert!(!SolcVersion::V0_4_24.uses_shr_dispatch());
        assert!(SolcVersion::V0_5_5.uses_shr_dispatch());
        assert!(SolcVersion::V0_8_0.uses_shr_dispatch());
    }

    #[test]
    fn callvalue_guard_era() {
        assert!(!SolcVersion {
            minor: 4,
            patch: 11
        }
        .emits_callvalue_guard());
        assert!(SolcVersion {
            minor: 4,
            patch: 22
        }
        .emits_callvalue_guard());
        assert!(SolcVersion::V0_8_0.emits_callvalue_guard());
    }

    #[test]
    fn sweep_is_ordered_and_nonempty() {
        let sweep = SolcVersion::sweep();
        assert!(sweep.len() >= 15);
        for w in sweep.windows(2) {
            assert!(
                (w[0].minor, w[0].patch) < (w[1].minor, w[1].patch),
                "sweep must ascend"
            );
        }
    }

    #[test]
    fn display() {
        assert_eq!(SolcVersion::V0_5_5.to_string(), "0.5.5");
        assert_eq!(Visibility::Public.to_string(), "public");
    }
}
