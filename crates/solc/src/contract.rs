//! Whole-contract assembly: dispatcher + per-function bodies.
//!
//! The generated runtime bytecode mirrors the Solidity layout the paper's
//! front end expects: an entry dispatcher that loads the first calldata
//! word, shifts the selector down (`DIV 2²²⁴` pre-0.5, `SHR 224` after),
//! compares against each function id, and jumps to the function body; each
//! body accesses its declared parameters with the §2.3.1 patterns and ends
//! in `STOP`.

use crate::config::{CompilerConfig, Visibility};
use crate::emit::FnEmitter;
use crate::spec::{FunctionSpec, Quirk};
use sigrec_abi::AbiType;
use sigrec_evm::{emit_junk_block, Assembler, Opcode, U256};

/// Which dispatcher layout [`compile_with_variant`] emits.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DispatcherShape {
    /// The size heuristic real solc uses: binary search above eight
    /// functions (SHR era), linear `EQ` chain otherwise.
    #[default]
    Auto,
    /// Always a single linear `EQ` chain.
    Linear,
    /// A selector-sorted binary-search split whenever there are at least
    /// two functions and the version dispatches with `SHR` (legacy `DIV`
    /// contracts never split, like real pre-0.5 solc).
    BinarySearch,
}

/// Behaviour-preserving emission options for metamorphic testing: every
/// combination must leave the recovered signature set unchanged, because
/// none of them alters what any reachable function body does.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EmitVariant {
    /// Dispatcher layout override.
    pub dispatcher: DispatcherShape,
    /// Order in which the dispatcher compares selectors, as a permutation
    /// of function indices; `None` keeps declaration order. Under a
    /// binary-search dispatcher the permutation reorders comparisons
    /// *within* each half (the pivot split itself is fixed by selector
    /// order).
    pub dispatch_order: Option<Vec<usize>>,
    /// Unreachable junk helper blocks emitted between the dispatcher
    /// fallback and the first function body.
    pub junk_blocks: usize,
    /// Also pad one junk block after each non-final function body — this
    /// perturbs every body's extent bytes without touching its behaviour.
    pub junk_between_bodies: bool,
    /// Seed for the junk block contents.
    pub junk_seed: u64,
    /// Emit the selector the way solang's codegen does instead of
    /// solc's: a `CALLDATASIZE < 4` guard jumping to a dedicated
    /// fallback first, then `DIV 2²²⁴` followed by an explicit
    /// `AND 0xffffffff` mask (solc omits the mask — `SHR`/`DIV` already
    /// leave a clean 4-byte value). Behaviour-preserving for any
    /// well-formed call, and a distinct dispatcher idiom the recovery's
    /// selector-shape matcher must accept.
    pub solang_style: bool,
}

/// A compiled contract: runtime bytecode plus its ground truth.
#[derive(Clone, Debug)]
pub struct CompiledContract {
    /// The runtime bytecode.
    pub code: Vec<u8>,
    /// The functions it dispatches, in dispatcher order.
    pub functions: Vec<FunctionSpec>,
    /// The configuration it was generated under.
    pub config: CompilerConfig,
}

/// Compiles a contract hosting `functions` under `config`.
///
/// # Examples
///
/// ```
/// use sigrec_solc::{compile, CompilerConfig, FunctionSpec, Visibility};
/// use sigrec_abi::FunctionSignature;
///
/// let f = FunctionSpec::new(
///     FunctionSignature::parse("transfer(address,uint256)").unwrap(),
///     Visibility::External,
/// );
/// let contract = compile(&[f], &CompilerConfig::default());
/// assert!(!contract.code.is_empty());
/// ```
pub fn compile(functions: &[FunctionSpec], config: &CompilerConfig) -> CompiledContract {
    compile_with_variant(functions, config, &EmitVariant::default())
}

/// Like [`compile`], with explicit [`EmitVariant`] emission options.
///
/// # Panics
///
/// Panics if `variant.dispatch_order` is present but not a permutation of
/// `0..functions.len()`.
pub fn compile_with_variant(
    functions: &[FunctionSpec],
    config: &CompilerConfig,
    variant: &EmitVariant,
) -> CompiledContract {
    let order: Vec<usize> = match &variant.dispatch_order {
        Some(order) => {
            let mut seen = vec![false; functions.len()];
            assert_eq!(order.len(), functions.len(), "dispatch_order length");
            for &i in order {
                assert!(
                    i < functions.len() && !std::mem::replace(&mut seen[i], true),
                    "dispatch_order must be a permutation of 0..{}",
                    functions.len()
                );
            }
            order.clone()
        }
        None => (0..functions.len()).collect(),
    };
    let mut asm = Assembler::new();
    // --- dispatcher ---
    // Solang guards the input length before touching the selector: a
    // call shorter than 4 bytes goes straight to a dedicated fallback.
    let solang_fallback = variant.solang_style.then(|| {
        let l = asm.fresh_label();
        asm.op(Opcode::CallDataSize)
            .push_u64(4)
            .op(Opcode::Swap(1))
            .op(Opcode::Lt);
        asm.push_label(l).op(Opcode::JumpI);
        l
    });
    asm.push_u64(0).op(Opcode::CallDataLoad);
    if variant.solang_style {
        asm.push(U256::ONE << 224u32)
            .op(Opcode::Swap(1))
            .op(Opcode::Div);
        asm.push_u64(0xffff_ffff).op(Opcode::And);
    } else if config.version.uses_shr_dispatch() {
        asm.push_u64(0xe0).op(Opcode::Shr);
    } else {
        asm.push(U256::ONE << 224u32)
            .op(Opcode::Swap(1))
            .op(Opcode::Div);
    }
    let entries: Vec<_> = functions.iter().map(|_| asm.fresh_label()).collect();
    // Like real solc, contracts with many functions get a binary-search
    // dispatcher: selectors are sorted and split with LT comparisons before
    // the linear EQ chains. Legacy DIV-era contracts always stay linear.
    let use_split = config.version.uses_shr_dispatch()
        && match variant.dispatcher {
            DispatcherShape::Auto => functions.len() > 8,
            DispatcherShape::Linear => false,
            DispatcherShape::BinarySearch => functions.len() >= 2,
        };
    let emit_eq_chain = |asm: &mut Assembler, chain: &[usize]| {
        for &i in chain {
            asm.op(Opcode::Dup(1));
            asm.push_sized(
                U256::from(functions[i].signature.selector.as_u32() as u64),
                4,
            );
            asm.op(Opcode::Eq);
            asm.push_label(entries[i]).op(Opcode::JumpI);
        }
    };
    if use_split {
        // The pivot is the median selector; the permutation only reorders
        // comparisons within each half, since the LT split fixes which
        // half a selector must be tested in.
        let mut sorted = order.clone();
        sorted.sort_by_key(|&i| functions[i].signature.selector.as_u32());
        let pivot = functions[sorted[sorted.len() / 2]]
            .signature
            .selector
            .as_u32();
        let in_lo = |i: usize| functions[i].signature.selector.as_u32() < pivot;
        let lo: Vec<usize> = order.iter().copied().filter(|&i| in_lo(i)).collect();
        let hi: Vec<usize> = order.iter().copied().filter(|&i| !in_lo(i)).collect();
        let hi_half = asm.fresh_label();
        // if selector >= pivot goto hi_half   (emitted as !(sel < pivot))
        asm.op(Opcode::Dup(1));
        asm.push_sized(U256::from(pivot as u64), 4);
        asm.op(Opcode::Swap(1)).op(Opcode::Lt).op(Opcode::IsZero);
        asm.push_label(hi_half).op(Opcode::JumpI);
        emit_eq_chain(&mut asm, &lo);
        asm.op(Opcode::Pop).op(Opcode::Stop);
        asm.jumpdest(hi_half);
        emit_eq_chain(&mut asm, &hi);
    } else {
        emit_eq_chain(&mut asm, &order);
    }
    // Fallback: no matching selector.
    asm.op(Opcode::Pop).op(Opcode::Stop);
    if let Some(l) = solang_fallback {
        // Short-calldata fallback: reached with an empty stack, so it
        // gets its own STOP instead of sharing the popping one above.
        asm.jumpdest(l);
        asm.op(Opcode::Stop);
    }
    // Dead padding between the fallback and the first body: unreachable,
    // so invisible to both execution and dispatcher extraction.
    for k in 0..variant.junk_blocks {
        emit_junk_block(&mut asm, variant.junk_seed.wrapping_add(k as u64));
    }
    // --- function bodies ---
    for (k, (f, &entry)) in functions.iter().zip(&entries).enumerate() {
        asm.jumpdest(entry);
        if config.version.emits_callvalue_guard() {
            let ok = asm.fresh_label();
            asm.op(Opcode::CallValue).op(Opcode::IsZero);
            asm.push_label(ok).op(Opcode::JumpI);
            asm.push_u64(0).push_u64(0).op(Opcode::Revert);
            asm.jumpdest(ok);
        }
        emit_body(&mut asm, f, config);
        asm.op(Opcode::Stop);
        if variant.junk_between_bodies && k + 1 < functions.len() {
            emit_junk_block(
                &mut asm,
                variant.junk_seed ^ (k as u64).wrapping_mul(0x51ab),
            );
        }
    }
    CompiledContract {
        code: asm.assemble(),
        functions: functions.to_vec(),
        config: *config,
    }
}

/// Convenience: compiles a contract with a single function.
pub fn compile_single(function: FunctionSpec, config: &CompilerConfig) -> CompiledContract {
    compile(std::slice::from_ref(&function), config)
}

/// Emits one function body honouring its quirk.
fn emit_body(asm: &mut Assembler, f: &FunctionSpec, config: &CompilerConfig) {
    let mut em = FnEmitter::new(asm, *config);
    match &f.quirk {
        Quirk::None => emit_params(&mut em, &f.signature.params, f.visibility, false),
        Quirk::InlineAssemblyReads { count } => {
            emit_params(&mut em, &f.signature.params, f.visibility, false);
            let declared_heads: usize = f.signature.params.iter().map(AbiType::head_size).sum();
            em.inline_assembly_reads(4 + declared_heads as u64, *count);
        }
        Quirk::TypeConversion { used } => emit_params(&mut em, used, f.visibility, false),
        Quirk::StoragePointer => {
            let mut head = 0u64;
            for p in &f.signature.params {
                em.storage_pointer_read(head);
                // A storage reference occupies one head word regardless of
                // the declared type.
                head += 32;
                let _ = p;
            }
        }
        Quirk::ConstIndexOptimized => emit_params(&mut em, &f.signature.params, f.visibility, true),
        Quirk::BytesNeverByteAccessed => {
            // Emit bytes params with the string pattern (no byte access).
            let masked: Vec<AbiType> = f
                .signature
                .params
                .iter()
                .map(|t| {
                    if *t == AbiType::Bytes {
                        AbiType::String
                    } else {
                        t.clone()
                    }
                })
                .collect();
            emit_params(&mut em, &masked, f.visibility, false);
        }
    }
}

/// Emits access code for each parameter at its head offset. Static tuples
/// are emitted member-by-member (their bytecode is identical to flattened
/// members, which is exactly the paper's point).
fn emit_params(em: &mut FnEmitter<'_>, params: &[AbiType], vis: Visibility, const_index: bool) {
    let mut head = 0u64;
    for p in params {
        emit_one(em, p, head, vis, const_index);
        head += p.head_size() as u64;
    }
}

fn emit_one(em: &mut FnEmitter<'_>, ty: &AbiType, head: u64, vis: Visibility, const_index: bool) {
    match ty {
        AbiType::Tuple(members) if !ty.is_dynamic() => {
            let mut mhead = head;
            for m in members {
                emit_one(em, m, mhead, vis, const_index);
                mhead += m.head_size() as u64;
            }
        }
        t if const_index && t.is_static_array() => em.static_array_external_const_index(t, head),
        t => em.param(t, head, vis),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigrec_abi::{encode_call, AbiValue, FunctionSignature};
    use sigrec_evm::{Env, Interpreter, Outcome, U256};

    fn run_with(decl: &str, vis: Visibility, values: &[AbiValue]) -> Outcome {
        let sig = FunctionSignature::parse(decl).unwrap();
        let calldata = encode_call(&sig, values).unwrap();
        let contract = compile_single(FunctionSpec::new(sig, vis), &CompilerConfig::default());
        Interpreter::new(&contract.code)
            .run(&Env::with_calldata(calldata))
            .outcome
    }

    fn u(v: u64) -> AbiValue {
        AbiValue::Uint(U256::from(v))
    }

    #[test]
    fn dispatcher_routes_matching_selector() {
        let out = run_with("f(uint256)", Visibility::External, &[u(5)]);
        assert_eq!(out, Outcome::Stop);
    }

    #[test]
    fn dispatcher_falls_back_on_unknown_selector() {
        let sig = FunctionSignature::parse("f(uint256)").unwrap();
        let contract = compile_single(
            FunctionSpec::new(sig, Visibility::External),
            &CompilerConfig::default(),
        );
        // Wrong selector: falls through to the fallback STOP without
        // touching parameter code.
        let env = Env::with_calldata(vec![0xde, 0xad, 0xbe, 0xef]);
        let exec = Interpreter::new(&contract.code).run(&env);
        assert_eq!(exec.outcome, Outcome::Stop);
        assert!(exec.steps < 20, "fallback must not run a body");
    }

    #[test]
    fn legacy_div_dispatch_also_routes() {
        let sig = FunctionSignature::parse("g(bool)").unwrap();
        let calldata = encode_call(&sig, &[AbiValue::Bool(true)]).unwrap();
        let cfg = CompilerConfig::new(crate::config::SolcVersion::V0_4_24, false);
        let contract = compile_single(FunctionSpec::new(sig, Visibility::External), &cfg);
        let out = Interpreter::new(&contract.code).run(&Env::with_calldata(calldata));
        assert_eq!(out.outcome, Outcome::Stop);
    }

    #[test]
    fn callvalue_guard_reverts_on_value() {
        let sig = FunctionSignature::parse("f(uint8)").unwrap();
        let calldata = encode_call(&sig, &[u(1)]).unwrap();
        let contract = compile_single(
            FunctionSpec::new(sig, Visibility::External),
            &CompilerConfig::default(),
        );
        let mut env = Env::with_calldata(calldata);
        env.callvalue = U256::ONE;
        let exec = Interpreter::new(&contract.code).run(&env);
        assert!(matches!(exec.outcome, Outcome::Revert(_)));
    }

    /// Every §2.3.1 category must execute cleanly on well-formed calldata
    /// (indices read from storage default to 0, in bounds for the values
    /// used here). This differential test pins generator ↔ ABI encoder
    /// consistency.
    #[test]
    fn all_categories_execute_on_encoded_args() {
        let cases: Vec<(&str, Vec<AbiValue>)> = vec![
            ("f(uint8)", vec![u(200)]),
            ("f(uint160)", vec![u(77)]),
            ("f(uint256)", vec![u(1)]),
            ("f(int16)", vec![AbiValue::Int(U256::from(-3i64))]),
            ("f(int256)", vec![AbiValue::Int(U256::from(-9i64))]),
            ("f(address)", vec![AbiValue::Address(U256::from(0xabcu64))]),
            ("f(bool)", vec![AbiValue::Bool(true)]),
            ("f(bytes4)", vec![AbiValue::FixedBytes(b"abcd".to_vec())]),
            ("f(bytes32)", vec![AbiValue::FixedBytes(vec![7u8; 32])]),
            ("f(bytes)", vec![AbiValue::Bytes(vec![1, 2, 3])]),
            ("f(string)", vec![AbiValue::Str("hello".into())]),
            (
                "f(uint256[3])",
                vec![AbiValue::Array(vec![u(1), u(2), u(3)])],
            ),
            (
                "f(uint256[3][2])",
                vec![AbiValue::Array(vec![
                    AbiValue::Array(vec![u(1), u(2), u(3)]),
                    AbiValue::Array(vec![u(4), u(5), u(6)]),
                ])],
            ),
            ("f(uint8[])", vec![AbiValue::Array(vec![u(9)])]),
            (
                "f(uint256[2][])",
                vec![AbiValue::Array(vec![AbiValue::Array(vec![u(1), u(2)])])],
            ),
            (
                "f(uint256[][])",
                vec![AbiValue::Array(vec![AbiValue::Array(vec![u(5)])])],
            ),
            (
                "f(uint8[][2])",
                vec![AbiValue::Array(vec![
                    AbiValue::Array(vec![u(1)]),
                    AbiValue::Array(vec![u(2)]),
                ])],
            ),
            (
                "f((uint256[],uint256))",
                vec![AbiValue::Tuple(vec![
                    AbiValue::Array(vec![u(1), u(2)]),
                    u(3),
                ])],
            ),
            (
                "f((uint256,uint256))",
                vec![AbiValue::Tuple(vec![u(10), u(20)])],
            ),
            (
                "f(uint8,bytes,bool)",
                vec![u(7), AbiValue::Bytes(vec![0xaa; 33]), AbiValue::Bool(false)],
            ),
        ];
        for (decl, values) in cases {
            for vis in [Visibility::Public, Visibility::External] {
                let out = run_with(decl, vis, &values);
                assert_eq!(out, Outcome::Stop, "{} ({}) must run cleanly", decl, vis);
            }
        }
    }

    #[test]
    fn multiple_functions_dispatch_independently() {
        let f1 = FunctionSpec::new(
            FunctionSignature::parse("alpha(uint8)").unwrap(),
            Visibility::External,
        );
        let f2 = FunctionSpec::new(
            FunctionSignature::parse("beta(bool,address)").unwrap(),
            Visibility::Public,
        );
        let contract = compile(&[f1.clone(), f2.clone()], &CompilerConfig::default());
        let cd1 = encode_call(&f1.signature, &[u(3)]).unwrap();
        let cd2 = encode_call(
            &f2.signature,
            &[AbiValue::Bool(true), AbiValue::Address(U256::ONE)],
        )
        .unwrap();
        for cd in [cd1, cd2] {
            let out = Interpreter::new(&contract.code).run(&Env::with_calldata(cd));
            assert_eq!(out.outcome, Outcome::Stop);
        }
    }

    /// Every emission variant must leave concrete behaviour unchanged:
    /// matching calldata runs the body to `STOP`, unknown selectors fall
    /// through to the fallback.
    #[test]
    fn variants_preserve_concrete_behaviour() {
        let decls = ["a(uint8)", "b(bool)", "c(uint256[])", "d(address)"];
        let fns: Vec<FunctionSpec> = decls
            .iter()
            .map(|d| FunctionSpec::new(FunctionSignature::parse(d).unwrap(), Visibility::External))
            .collect();
        let cfg = CompilerConfig::default();
        let variants = [
            EmitVariant::default(),
            EmitVariant {
                dispatcher: DispatcherShape::BinarySearch,
                ..Default::default()
            },
            EmitVariant {
                dispatch_order: Some(vec![2, 0, 3, 1]),
                ..Default::default()
            },
            EmitVariant {
                junk_blocks: 3,
                junk_between_bodies: true,
                junk_seed: 99,
                ..Default::default()
            },
            EmitVariant {
                dispatcher: DispatcherShape::BinarySearch,
                dispatch_order: Some(vec![3, 1, 2, 0]),
                junk_blocks: 2,
                junk_seed: 7,
                ..Default::default()
            },
            EmitVariant {
                solang_style: true,
                ..Default::default()
            },
            EmitVariant {
                solang_style: true,
                dispatcher: DispatcherShape::BinarySearch,
                junk_blocks: 1,
                junk_seed: 3,
                ..Default::default()
            },
        ];
        let sig = FunctionSignature::parse("b(bool)").unwrap();
        let cd = encode_call(&sig, &[AbiValue::Bool(true)]).unwrap();
        for v in &variants {
            let contract = compile_with_variant(&fns, &cfg, v);
            let out = Interpreter::new(&contract.code).run(&Env::with_calldata(cd.clone()));
            assert_eq!(out.outcome, Outcome::Stop, "variant {:?}", v);
            let miss = Interpreter::new(&contract.code)
                .run(&Env::with_calldata(vec![0xde, 0xad, 0xbe, 0xef]));
            assert_eq!(miss.outcome, Outcome::Stop, "fallback under {:?}", v);
        }
    }

    #[test]
    fn solang_style_guards_short_calldata() {
        let fns = vec![FunctionSpec::new(
            FunctionSignature::parse("f(uint256)").unwrap(),
            Visibility::External,
        )];
        let contract = compile_with_variant(
            &fns,
            &CompilerConfig::default(),
            &EmitVariant {
                solang_style: true,
                ..Default::default()
            },
        );
        // Two bytes of calldata: the length guard must route to the
        // dedicated fallback, not underflow the selector pop.
        let exec = Interpreter::new(&contract.code).run(&Env::with_calldata(vec![0xde, 0xad]));
        assert_eq!(exec.outcome, Outcome::Stop);
        assert!(exec.steps < 12, "short calldata must skip the dispatcher");
    }

    #[test]
    fn default_variant_matches_plain_compile() {
        let fns = vec![FunctionSpec::new(
            FunctionSignature::parse("f(uint256)").unwrap(),
            Visibility::External,
        )];
        let cfg = CompilerConfig::default();
        assert_eq!(
            compile(&fns, &cfg).code,
            compile_with_variant(&fns, &cfg, &EmitVariant::default()).code
        );
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_dispatch_order_panics() {
        let fns = vec![
            FunctionSpec::new(
                FunctionSignature::parse("f(uint8)").unwrap(),
                Visibility::External,
            ),
            FunctionSpec::new(
                FunctionSignature::parse("g(uint8)").unwrap(),
                Visibility::External,
            ),
        ];
        compile_with_variant(
            &fns,
            &CompilerConfig::default(),
            &EmitVariant {
                dispatch_order: Some(vec![0, 0]),
                ..Default::default()
            },
        );
    }

    #[test]
    fn quirk_bodies_execute() {
        let cfg = CompilerConfig::default();
        let cases = vec![
            (
                FunctionSpec::new(
                    FunctionSignature::parse("s()").unwrap(),
                    Visibility::External,
                )
                .with_quirk(Quirk::InlineAssemblyReads { count: 2 }),
                Vec::new(),
            ),
            (
                FunctionSpec::new(
                    FunctionSignature::parse("t(uint256[3])").unwrap(),
                    Visibility::External,
                )
                .with_quirk(Quirk::ConstIndexOptimized),
                vec![AbiValue::Array(vec![u(1), u(2), u(3)])],
            ),
            (
                FunctionSpec::new(
                    FunctionSignature::parse("b(bytes)").unwrap(),
                    Visibility::Public,
                )
                .with_quirk(Quirk::BytesNeverByteAccessed),
                vec![AbiValue::Bytes(vec![1, 2, 3])],
            ),
        ];
        for (spec, values) in cases {
            let cd = encode_call(&spec.signature, &values).unwrap();
            let contract = compile_single(spec.clone(), &cfg);
            let out = Interpreter::new(&contract.code).run(&Env::with_calldata(cd));
            assert_eq!(out.outcome, Outcome::Stop, "quirk {:?}", spec.quirk);
        }
    }
}
