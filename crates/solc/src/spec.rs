//! Function specifications and the paper's residual-inaccuracy quirks.
//!
//! §5.2 of the paper attributes SigRec's residual errors to source-level
//! facts that are invisible in bytecode. [`Quirk`] reproduces each of them
//! so the corpus can inject the error classes at their observed rates, and
//! [`expected_recovery`] computes what a *sound bytecode-level analysis*
//! would say for a function — the oracle our tests hold SigRec to.

use crate::config::{CompilerConfig, Visibility};
use sigrec_abi::{AbiType, FunctionSignature, TypeParseError};

/// A source-level oddity that makes the declared signature unrecoverable
/// from bytecode (the paper's error cases).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum Quirk {
    /// No quirk: bytecode faithfully reflects the declaration.
    #[default]
    None,
    /// Case 1: the body reads `count` undeclared words from the call data
    /// with inline assembly (`calldataload(4)`, `calldataload(36)`, …).
    InlineAssemblyReads {
        /// Number of undeclared word reads.
        count: u64,
    },
    /// Case 2: the body forcibly converts parameters before use, so the
    /// access patterns reflect `used` rather than the declared types.
    TypeConversion {
        /// The types the body actually accesses the parameters as.
        used: Vec<AbiType>,
    },
    /// Case 4: parameters carry the `storage` modifier — the call data
    /// holds a storage reference word, not the value.
    StoragePointer,
    /// Case 5 (first variant): compiled with optimisation and accessed at
    /// constant indices, static arrays lose their runtime bound checks.
    ConstIndexOptimized,
    /// Case 5 (second variant): a `bytes` parameter whose individual bytes
    /// are never accessed is indistinguishable from a `string`.
    BytesNeverByteAccessed,
}

/// One public/external function to generate: its declared signature,
/// visibility, and any error-case quirk.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FunctionSpec {
    /// The declared (ground-truth) signature.
    pub signature: FunctionSignature,
    /// `public` or `external`.
    pub visibility: Visibility,
    /// Injected error case, if any.
    pub quirk: Quirk,
}

impl FunctionSpec {
    /// A quirk-free function.
    pub fn new(signature: FunctionSignature, visibility: Visibility) -> Self {
        FunctionSpec {
            signature,
            visibility,
            quirk: Quirk::None,
        }
    }

    /// Sets the quirk (builder style).
    pub fn with_quirk(mut self, quirk: Quirk) -> Self {
        self.quirk = quirk;
        self
    }

    /// Parses a declaration like `transfer(address,uint256)` into a
    /// quirk-free spec, propagating the parse error instead of panicking
    /// on malformed declarations.
    ///
    /// # Examples
    ///
    /// ```
    /// use sigrec_solc::{FunctionSpec, Visibility};
    ///
    /// let spec = FunctionSpec::parse("transfer(address,uint256)", Visibility::External).unwrap();
    /// assert_eq!(spec.signature.params.len(), 2);
    /// assert!(FunctionSpec::parse("broken(uint257)", Visibility::External).is_err());
    /// ```
    pub fn parse(decl: &str, visibility: Visibility) -> Result<Self, TypeParseError> {
        Ok(FunctionSpec::new(
            FunctionSignature::parse(decl)?,
            visibility,
        ))
    }
}

/// The parameter-type list a sound bytecode-level analysis recovers for
/// `spec` under `config` — the declared list transformed by the quirk and
/// by the inherent bytecode ambiguities (§2.3.1: static structs flatten;
/// §5.2 case 5).
pub fn expected_recovery(spec: &FunctionSpec, _config: &CompilerConfig) -> Vec<AbiType> {
    let declared = &spec.signature.params;
    match &spec.quirk {
        Quirk::None => declared.iter().flat_map(visible_form).collect(),
        Quirk::InlineAssemblyReads { count } => {
            let mut out: Vec<AbiType> = declared.iter().flat_map(visible_form).collect();
            out.extend((0..*count).map(|_| AbiType::Uint(256)));
            out
        }
        Quirk::TypeConversion { used } => used.iter().flat_map(visible_form).collect(),
        Quirk::StoragePointer => declared.iter().map(|_| AbiType::Uint(256)).collect(),
        Quirk::ConstIndexOptimized => declared
            .iter()
            .flat_map(|t| {
                if t.is_static_array() {
                    vec![AbiType::Uint(256)]
                } else {
                    visible_form(t)
                }
            })
            .collect(),
        Quirk::BytesNeverByteAccessed => declared
            .iter()
            .flat_map(|t| {
                if *t == AbiType::Bytes {
                    vec![AbiType::String]
                } else {
                    visible_form(t)
                }
            })
            .collect(),
    }
}

/// The bytecode-visible form of a declared type: static structs flatten
/// into their members (recursively) because their layout and access code
/// are identical to the members standing alone (§2.3.1 category 5).
fn visible_form(ty: &AbiType) -> Vec<AbiType> {
    match ty {
        AbiType::Tuple(members) if !ty.is_dynamic() => {
            members.iter().flat_map(visible_form).collect()
        }
        other => vec![other.clone()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(decl: &str, quirk: Quirk) -> FunctionSpec {
        FunctionSpec::parse(decl, Visibility::External)
            .expect("valid test declaration")
            .with_quirk(quirk)
    }

    #[test]
    fn parse_rejects_malformed_declarations() {
        assert!(FunctionSpec::parse("f(uint8)", Visibility::Public).is_ok());
        for bad in ["nameonly", "f(uint257)", "f(uint8", "f(notatype)"] {
            assert!(
                FunctionSpec::parse(bad, Visibility::External).is_err(),
                "{bad:?} should not parse"
            );
        }
    }

    fn types(list: &[&str]) -> Vec<AbiType> {
        list.iter().map(|s| AbiType::parse(s).unwrap()).collect()
    }

    #[test]
    fn clean_function_recovers_declaration() {
        let s = spec("f(address,uint256)", Quirk::None);
        assert_eq!(
            expected_recovery(&s, &CompilerConfig::default()),
            types(&["address", "uint256"])
        );
    }

    #[test]
    fn static_struct_flattens() {
        let s = spec("f((uint256,bool))", Quirk::None);
        assert_eq!(
            expected_recovery(&s, &CompilerConfig::default()),
            types(&["uint256", "bool"])
        );
        // Dynamic structs do not flatten.
        let s = spec("f((uint256[],bool))", Quirk::None);
        assert_eq!(
            expected_recovery(&s, &CompilerConfig::default()),
            types(&["(uint256[],bool)"])
        );
    }

    #[test]
    fn inline_assembly_adds_words() {
        let s = spec("f()", Quirk::InlineAssemblyReads { count: 2 });
        assert_eq!(
            expected_recovery(&s, &CompilerConfig::default()),
            types(&["uint256", "uint256"])
        );
    }

    #[test]
    fn type_conversion_overrides() {
        let s = spec(
            "f(uint256[6])",
            Quirk::TypeConversion {
                used: types(&["uint8[6]"]),
            },
        );
        assert_eq!(
            expected_recovery(&s, &CompilerConfig::default()),
            types(&["uint8[6]"])
        );
    }

    #[test]
    fn storage_pointer_becomes_word() {
        let s = spec("f(uint256[])", Quirk::StoragePointer);
        assert_eq!(
            expected_recovery(&s, &CompilerConfig::default()),
            types(&["uint256"])
        );
    }

    #[test]
    fn optimized_const_index_degrades_static_arrays() {
        let s = spec("f(uint256[3],bool)", Quirk::ConstIndexOptimized);
        assert_eq!(
            expected_recovery(&s, &CompilerConfig::default()),
            types(&["uint256", "bool"])
        );
    }

    #[test]
    fn unaccessed_bytes_degrades_to_string() {
        let s = spec("f(bytes,uint8)", Quirk::BytesNeverByteAccessed);
        assert_eq!(
            expected_recovery(&s, &CompilerConfig::default()),
            types(&["string", "uint8"])
        );
    }
}
