//! Erays+ — signature-informed IR enhancement (§6.3).
//!
//! Given the recovered signatures, Erays+ improves the Erays output by:
//!
//! 1. adding a typed function header
//!    (`function func_a9059cbb(address arg1, uint256 arg2)`);
//! 2. renaming registers copied from parameters to `argN`, and registers
//!    holding a dynamic parameter's num field to `num(argN)`;
//! 3. collapsing the compiler-generated parameter-access code (loads,
//!    masks, bound checks, copies) into one `argN = calldata[...]`
//!    assignment per parameter.

use crate::ir::{IrFunction, IrProgram, IrStmt, Operand};
use sigrec_core::RecoveredFunction;
use sigrec_evm::U256;
use std::collections::HashMap;

/// The enhanced rendering of one function.
#[derive(Clone, Debug)]
pub struct EnhancedFunction {
    /// The typed signature header.
    pub header: String,
    /// The rewritten body lines.
    pub lines: Vec<String>,
    /// Readability deltas vs the plain Erays rendering.
    pub delta: ReadabilityDelta,
}

/// The §6.3 readability metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadabilityDelta {
    /// Parameter types added (header annotations).
    pub added_types: usize,
    /// Registers renamed to `argN`.
    pub added_param_names: usize,
    /// Registers renamed to `num(argN)`.
    pub added_num_names: usize,
    /// Access-boilerplate lines removed.
    pub removed_lines: usize,
}

impl ReadabilityDelta {
    /// True if anything improved.
    pub fn improved(&self) -> bool {
        self.added_types > 0
            || self.added_param_names > 0
            || self.added_num_names > 0
            || self.removed_lines > 0
    }

    /// Accumulates another function's delta.
    pub fn absorb(&mut self, other: &ReadabilityDelta) {
        self.added_types += other.added_types;
        self.added_param_names += other.added_param_names;
        self.added_num_names += other.added_num_names;
        self.removed_lines += other.removed_lines;
    }
}

/// Enhances a lifted program with recovered signatures, pairing functions
/// by entry pc.
pub fn enhance(program: &IrProgram, recovered: &[RecoveredFunction]) -> Vec<EnhancedFunction> {
    program
        .functions
        .iter()
        .filter_map(|f| {
            let rec = recovered.iter().find(|r| r.entry == f.entry)?;
            Some(enhance_function(f, rec))
        })
        .collect()
}

/// Enhances one function.
pub fn enhance_function(func: &IrFunction, rec: &RecoveredFunction) -> EnhancedFunction {
    // Head offsets of each parameter within the calldata.
    let mut heads: HashMap<u64, usize> = HashMap::new();
    let mut h = 4u64;
    for (i, p) in rec.params.iter().enumerate() {
        heads.insert(h, i);
        h += p.head_size() as u64;
    }
    // Pass 1: name registers. A CALLDATALOAD at a head offset defines
    // argN; a CALLDATALOAD of `argN + 4` defines num(argN).
    let mut names: HashMap<u32, String> = HashMap::new();
    let mut delta = ReadabilityDelta {
        added_types: rec.params.len(),
        ..Default::default()
    };
    for stmt in &func.body {
        let IrStmt::Assign { dst, op, args } = stmt else {
            continue;
        };
        if op == "CALLDATALOAD" {
            match args.first() {
                Some(Operand::Const(c)) => {
                    if let Some(&idx) = c.as_u64_checked().and_then(|v| heads.get(&v)) {
                        names.insert(*dst, format!("arg{}", idx + 1));
                        delta.added_param_names += 1;
                    }
                }
                Some(Operand::Var(v)) => {
                    if let Some(base) = names.get(v).cloned() {
                        if base.starts_with("arg") && !base.contains("num") {
                            names.insert(*dst, format!("num({})", base));
                            delta.added_num_names += 1;
                        }
                    }
                }
                _ => {}
            }
        } else if op == "ADD" && args.len() == 2 {
            // Propagate `argN + const` so the num-field load above matches.
            let named = match (&args[0], &args[1]) {
                (Operand::Var(v), Operand::Const(c)) | (Operand::Const(c), Operand::Var(v))
                    if *c == U256::from(4u64) =>
                {
                    names.get(v).cloned()
                }
                _ => None,
            };
            if let Some(n) = named {
                names.insert(*dst, n);
            }
        } else if op == "AND" || op == "SIGNEXTEND" || op == "ISZERO" {
            // Mask of a named value keeps its name (type info is in the
            // header now).
            if let Some(Operand::Var(v)) = args.iter().find(|a| matches!(a, Operand::Var(_))) {
                if let Some(n) = names.get(v).cloned() {
                    names.insert(*dst, n);
                }
            }
        }
    }
    // Pass 2: emit lines, dropping access boilerplate.
    let mut lines = Vec::new();
    for (i, p) in rec.params.iter().enumerate() {
        lines.push(format!(
            "arg{} = calldata argument {} ({})",
            i + 1,
            i + 1,
            p.canonical()
        ));
    }
    for stmt in &func.body {
        if is_access_boilerplate(stmt, &names) {
            delta.removed_lines += 1;
            continue;
        }
        lines.push(render(stmt, &names));
    }
    let header = format!(
        "function func_{:08x}({})",
        rec.selector.as_u32(),
        rec.params
            .iter()
            .enumerate()
            .map(|(i, p)| format!("{} arg{}", p.canonical(), i + 1))
            .collect::<Vec<_>>()
            .join(", ")
    );
    EnhancedFunction {
        header,
        lines,
        delta,
    }
}

/// Statements that exist only to fetch/validate parameters; Erays+ folds
/// them into the `argN = …` assignments.
fn is_access_boilerplate(stmt: &IrStmt, names: &HashMap<u32, String>) -> bool {
    match stmt {
        IrStmt::Assign { op, args, dst } => {
            let arg_related = args.iter().any(|a| match a {
                Operand::Var(v) => names.contains_key(v),
                _ => false,
            }) || names.contains_key(dst);
            matches!(
                op.as_str(),
                "CALLDATALOAD" | "AND" | "SIGNEXTEND" | "ISZERO" | "LT"
            ) && arg_related
        }
        IrStmt::Effect { op, .. } => op == "CALLDATACOPY",
        _ => false,
    }
}

fn render(stmt: &IrStmt, names: &HashMap<u32, String>) -> String {
    let subst = |o: &Operand| match o {
        Operand::Var(v) => names.get(v).cloned().unwrap_or_else(|| format!("v{}", v)),
        Operand::Const(c) => format!("0x{:x}", c),
    };
    match stmt {
        IrStmt::Assign { dst, op, args } => {
            let d = names
                .get(dst)
                .cloned()
                .unwrap_or_else(|| format!("v{}", dst));
            format!(
                "{} = {}({})",
                d,
                op,
                args.iter().map(subst).collect::<Vec<_>>().join(", ")
            )
        }
        IrStmt::Effect { op, args } => {
            format!(
                "{}({})",
                op,
                args.iter().map(subst).collect::<Vec<_>>().join(", ")
            )
        }
        IrStmt::Jump {
            target,
            condition: Some(c),
        } => {
            format!("if {} goto {}", subst(c), subst(target))
        }
        IrStmt::Jump {
            target,
            condition: None,
        } => format!("goto {}", subst(target)),
        other => other.to_string(),
    }
}

/// Small helper: `U256 → u64` without panicking.
trait AsU64Checked {
    fn as_u64_checked(&self) -> Option<u64>;
}

impl AsU64Checked for U256 {
    fn as_u64_checked(&self) -> Option<u64> {
        self.as_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lift;
    use sigrec_abi::FunctionSignature;
    use sigrec_core::SigRec;
    use sigrec_solc::{compile_single, CompilerConfig, FunctionSpec, Visibility};

    fn enhanced_for(decl: &str, vis: Visibility) -> EnhancedFunction {
        let sig = FunctionSignature::parse(decl).unwrap();
        let c = compile_single(FunctionSpec::new(sig, vis), &CompilerConfig::default());
        let rec = SigRec::new().recover(&c.code);
        let entries: Vec<usize> = rec.iter().map(|r| r.entry).collect();
        let program = lift(&c.code, &entries);
        let out = enhance(&program, &rec);
        assert_eq!(out.len(), 1);
        out.into_iter().next().unwrap()
    }

    #[test]
    fn header_carries_types_and_names() {
        let e = enhanced_for("f(address,uint256)", Visibility::External);
        assert!(e.header.contains("address arg1"), "{}", e.header);
        assert!(e.header.contains("uint256 arg2"), "{}", e.header);
        assert_eq!(e.delta.added_types, 2);
    }

    #[test]
    fn parameters_renamed_and_boilerplate_removed() {
        let e = enhanced_for("f(uint8,bool)", Visibility::External);
        assert!(e.delta.added_param_names >= 2);
        assert!(e.delta.removed_lines >= 2, "masks and loads must fold away");
        assert!(e
            .lines
            .iter()
            .any(|l| l.contains("arg1 = calldata argument 1")));
    }

    #[test]
    fn num_field_named_for_dynamic_params() {
        let e = enhanced_for("f(uint256[])", Visibility::Public);
        assert!(
            e.delta.added_num_names >= 1,
            "dynamic array must yield a num(argN) rename; lines: {:#?}",
            e.lines
        );
    }

    #[test]
    fn improvement_is_nonempty_for_param_functions() {
        for decl in ["f(uint8)", "f(bytes)", "f(uint256[3])"] {
            let e = enhanced_for(decl, Visibility::Public);
            assert!(e.delta.improved(), "{decl} must improve");
        }
    }
}
