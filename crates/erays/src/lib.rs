//! # sigrec-erays
//!
//! The §6.3 application: reverse engineering EVM bytecode. [`ir::lift`]
//! produces a register-based three-address IR (our stand-in for Erays);
//! [`plus::enhance`] is *Erays+*, which uses SigRec's recovered function
//! signatures to add typed headers, rename parameter and num-field
//! registers, and collapse compiler-generated parameter-access code —
//! measured by the paper's readability deltas ([`ReadabilityDelta`]).

#![warn(missing_docs)]

pub mod ir;
pub mod plus;
pub mod structure;

pub use ir::{lift, IrFunction, IrProgram, IrStmt, Operand};
pub use plus::{enhance, enhance_function, EnhancedFunction, ReadabilityDelta};
pub use structure::{render_structured, LoopNesting};
