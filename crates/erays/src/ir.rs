//! A register-based intermediate representation lifted from EVM bytecode.
//!
//! Erays (the reverse-engineering tool §6.3 builds on) converts
//! stack-machine bytecode into three-address statements over virtual
//! registers, which read far better than raw opcodes. The lifter here is a
//! per-block symbolic-stack translation: each value-producing instruction
//! allocates a fresh register and emits one assignment.

use sigrec_evm::{Disassembly, Opcode, U256};
use std::fmt;

/// An operand of an IR statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Operand {
    /// A virtual register.
    Var(u32),
    /// A constant.
    Const(U256),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "v{}", v),
            Operand::Const(c) => write!(f, "0x{:x}", c),
        }
    }
}

/// One three-address statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IrStmt {
    /// `dst = op(args…)`.
    Assign {
        /// Destination register.
        dst: u32,
        /// Mnemonic of the producing operation.
        op: String,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// An effect without a result (MSTORE, SSTORE, CALLDATACOPY, LOG…).
    Effect {
        /// Mnemonic.
        op: String,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// An (un)conditional jump.
    Jump {
        /// Target operand.
        target: Operand,
        /// Condition; `None` for unconditional jumps.
        condition: Option<Operand>,
    },
    /// A terminator (STOP/RETURN/REVERT/INVALID/SELFDESTRUCT).
    Halt {
        /// Mnemonic.
        op: String,
    },
    /// A `JUMPDEST` label.
    Label {
        /// The pc of the label.
        pc: usize,
    },
}

impl fmt::Display for IrStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrStmt::Assign { dst, op, args } => {
                write!(f, "v{} = {}(", dst, op)?;
                write_args(f, args)?;
                write!(f, ")")
            }
            IrStmt::Effect { op, args } => {
                write!(f, "{}(", op)?;
                write_args(f, args)?;
                write!(f, ")")
            }
            IrStmt::Jump {
                target,
                condition: Some(c),
            } => {
                write!(f, "if {} goto {}", c, target)
            }
            IrStmt::Jump {
                target,
                condition: None,
            } => write!(f, "goto {}", target),
            IrStmt::Halt { op } => write!(f, "{}", op),
            IrStmt::Label { pc } => write!(f, "loc_{:x}:", pc),
        }
    }
}

fn write_args(f: &mut fmt::Formatter<'_>, args: &[Operand]) -> fmt::Result {
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{}", a)?;
    }
    Ok(())
}

/// One lifted function body.
#[derive(Clone, Debug)]
pub struct IrFunction {
    /// pc of the function's entry `JUMPDEST`.
    pub entry: usize,
    /// Statements in address order.
    pub body: Vec<IrStmt>,
}

impl IrFunction {
    /// Number of statements (the §6.3 line metric).
    pub fn line_count(&self) -> usize {
        self.body.len()
    }
}

/// A lifted program.
#[derive(Clone, Debug, Default)]
pub struct IrProgram {
    /// The dispatcher prologue's statements.
    pub dispatcher: Vec<IrStmt>,
    /// Function bodies, in entry order.
    pub functions: Vec<IrFunction>,
}

/// Lifts runtime bytecode into the register IR. `entries` are the function
/// entry pcs (from dispatcher extraction), used to split the program;
/// everything before the first entry is the dispatcher.
pub fn lift(code: &[u8], entries: &[usize]) -> IrProgram {
    let disasm = Disassembly::new(code);
    let mut sorted: Vec<usize> = entries.to_vec();
    sorted.sort_unstable();
    let mut program = IrProgram::default();
    let first_entry = sorted.first().copied().unwrap_or(usize::MAX);
    program.dispatcher = lift_range(&disasm, 0, first_entry);
    for (k, &entry) in sorted.iter().enumerate() {
        let end = sorted.get(k + 1).copied().unwrap_or(code.len());
        program.functions.push(IrFunction {
            entry,
            body: lift_range(&disasm, entry, end),
        });
    }
    program
}

/// Lifts the instructions with `start <= pc < end`.
fn lift_range(disasm: &Disassembly, start: usize, end: usize) -> Vec<IrStmt> {
    let mut l = Lifter {
        next_var: 0,
        stack: Vec::new(),
        out: Vec::new(),
    };
    let Some(start_idx) = disasm.index_of(start) else {
        return l.out;
    };
    for ins in &disasm.instructions()[start_idx..] {
        if ins.pc >= end {
            break;
        }
        let op = ins.opcode;
        match op {
            Opcode::Push(_) => {
                l.stack
                    .push(Operand::Const(ins.push_value().unwrap_or(U256::ZERO)));
            }
            Opcode::Pop => {
                let _ = l.pop();
            }
            Opcode::Dup(n) => {
                let n = n as usize;
                l.ensure_depth(n);
                let v = l.stack[l.stack.len() - n].clone();
                l.stack.push(v);
            }
            Opcode::Swap(n) => {
                let n = n as usize;
                l.ensure_depth(n + 1);
                let top = l.stack.len() - 1;
                l.stack.swap(top, top - n);
            }
            Opcode::JumpDest => {
                l.out.push(IrStmt::Label { pc: ins.pc });
            }
            Opcode::Jump => {
                let target = l.pop();
                l.out.push(IrStmt::Jump {
                    target,
                    condition: None,
                });
                l.stack.clear();
            }
            Opcode::JumpI => {
                let target = l.pop();
                let cond = l.pop();
                l.out.push(IrStmt::Jump {
                    target,
                    condition: Some(cond),
                });
            }
            Opcode::Stop
            | Opcode::Return
            | Opcode::Revert
            | Opcode::SelfDestruct
            | Opcode::Invalid(_) => {
                for _ in 0..op.stack_in() {
                    let _ = l.pop();
                }
                l.out.push(IrStmt::Halt { op: op.mnemonic() });
                l.stack.clear();
            }
            other => {
                let mut args = Vec::with_capacity(other.stack_in());
                for _ in 0..other.stack_in() {
                    args.push(l.pop());
                }
                if other.stack_out() > 0 {
                    let dst = l.fresh();
                    l.out.push(IrStmt::Assign {
                        dst,
                        op: other.mnemonic(),
                        args,
                    });
                } else {
                    l.out.push(IrStmt::Effect {
                        op: other.mnemonic(),
                        args,
                    });
                }
            }
        }
    }
    l.out
}

struct Lifter {
    next_var: u32,
    stack: Vec<Operand>,
    out: Vec<IrStmt>,
}

impl Lifter {
    /// Allocates a fresh register and pushes it.
    fn fresh(&mut self) -> u32 {
        let v = self.next_var;
        self.next_var += 1;
        self.stack.push(Operand::Var(v));
        v
    }

    /// Pops an operand, materialising a PHI register for values that flow
    /// in from the dispatcher or a previous block.
    fn pop(&mut self) -> Operand {
        match self.stack.pop() {
            Some(v) => v,
            None => {
                let v = self.next_var;
                self.next_var += 1;
                self.out.push(IrStmt::Assign {
                    dst: v,
                    op: "PHI".into(),
                    args: Vec::new(),
                });
                Operand::Var(v)
            }
        }
    }

    /// Pads the abstract stack with PHI registers up to `depth`.
    fn ensure_depth(&mut self, depth: usize) {
        while self.stack.len() < depth {
            let v = self.next_var;
            self.next_var += 1;
            self.out.push(IrStmt::Assign {
                dst: v,
                op: "PHI".into(),
                args: Vec::new(),
            });
            self.stack.insert(0, Operand::Var(v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifts_simple_sequence() {
        // PUSH1 4 CALLDATALOAD PUSH1 0xff AND POP STOP
        let code = [0x60, 0x04, 0x35, 0x60, 0xff, 0x16, 0x50, 0x00];
        let p = lift(&code, &[0]);
        let body = &p.functions[0].body;
        let text: Vec<String> = body.iter().map(|s| s.to_string()).collect();
        assert!(
            text.iter().any(|l| l.contains("CALLDATALOAD(0x4)")),
            "{:?}",
            text
        );
        assert!(text.iter().any(|l| l.contains("AND(")), "{:?}", text);
        assert!(matches!(body.last(), Some(IrStmt::Halt { .. })));
    }

    #[test]
    fn registers_are_single_assignment() {
        let code = [0x60, 0x01, 0x60, 0x02, 0x01, 0x60, 0x03, 0x02, 0x50, 0x00];
        let p = lift(&code, &[0]);
        let mut seen = std::collections::HashSet::new();
        for s in &p.functions[0].body {
            if let IrStmt::Assign { dst, .. } = s {
                assert!(seen.insert(*dst), "register v{dst} assigned twice");
            }
        }
    }

    #[test]
    fn underflow_materialises_phi() {
        // ADD on an empty abstract stack (values from the dispatcher).
        let code = [0x01, 0x00];
        let p = lift(&code, &[0]);
        let phis = p.functions[0]
            .body
            .iter()
            .filter(|s| matches!(s, IrStmt::Assign { op, .. } if op == "PHI"))
            .count();
        assert_eq!(phis, 2);
    }

    #[test]
    fn splits_dispatcher_and_functions() {
        // dispatcher: PUSH1 0 CALLDATALOAD ... then two JUMPDEST bodies.
        let code = [0x60, 0x00, 0x35, 0x50, 0x00, 0x5b, 0x00, 0x5b, 0x00];
        let p = lift(&code, &[5, 7]);
        assert_eq!(p.functions.len(), 2);
        assert!(!p.dispatcher.is_empty());
        assert_eq!(p.functions[0].entry, 5);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            IrStmt::Assign {
                dst: 3,
                op: "ADD".into(),
                args: vec![Operand::Var(1), Operand::Const(U256::from(4u64))]
            }
            .to_string(),
            "v3 = ADD(v1, 0x4)"
        );
        assert_eq!(IrStmt::Label { pc: 0x2a }.to_string(), "loc_2a:");
        assert_eq!(
            IrStmt::Jump {
                target: Operand::Const(U256::from(8u64)),
                condition: None
            }
            .to_string(),
            "goto 0x8"
        );
    }
}
