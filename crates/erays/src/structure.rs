//! Control-flow structuring of lifted functions.
//!
//! Erays renders register IR linearly; readable output also wants the
//! *shape* of control flow. This module computes loop nesting from the
//! CFG's natural loops (via the dominator analysis in `sigrec-evm`) and
//! renders each function with loop bodies indented and annotated — a
//! lightweight structurer rather than a full decompiler.

use crate::ir::IrFunction;
use crate::ir::IrStmt;
use sigrec_evm::{natural_loops, Cfg};
use std::collections::BTreeMap;

/// Loop-nesting information for one function's pc range.
#[derive(Clone, Debug, Default)]
pub struct LoopNesting {
    /// pc of each loop header in the range.
    pub headers: Vec<usize>,
    /// For each block start pc, how many loops contain it.
    depth_by_block: BTreeMap<usize, usize>,
}

impl LoopNesting {
    /// Computes nesting for blocks within `[start, end)` of `code`.
    pub fn compute(code: &[u8], start: usize, end: usize) -> Self {
        let cfg = Cfg::new(code);
        let loops = natural_loops(&cfg);
        let mut depth_by_block: BTreeMap<usize, usize> = BTreeMap::new();
        let mut headers = Vec::new();
        for l in &loops {
            if l.header < start || l.header >= end {
                continue;
            }
            headers.push(l.header);
            for &b in &l.body {
                *depth_by_block.entry(b).or_insert(0) += 1;
            }
        }
        headers.sort_unstable();
        headers.dedup();
        LoopNesting {
            headers,
            depth_by_block,
        }
    }

    /// Loop depth of the block starting at `pc` (0 = not in a loop).
    pub fn depth(&self, pc: usize) -> usize {
        self.depth_by_block.get(&pc).copied().unwrap_or(0)
    }

    /// True if `pc` heads a loop.
    pub fn is_header(&self, pc: usize) -> bool {
        self.headers.binary_search(&pc).is_ok()
    }
}

/// Renders a lifted function with loop-aware indentation: statements inside
/// a loop body are indented one level per enclosing loop, and loop headers
/// are annotated.
pub fn render_structured(code: &[u8], func: &IrFunction) -> String {
    let end = func
        .body
        .iter()
        .filter_map(|s| match s {
            IrStmt::Label { pc } => Some(*pc),
            _ => None,
        })
        .max()
        .map(|last| last + 1)
        .unwrap_or(code.len())
        .max(func.entry + 1);
    let nesting = LoopNesting::compute(code, func.entry, end.max(code.len()));
    let mut out = String::new();
    let mut depth = 0usize;
    for stmt in &func.body {
        if let IrStmt::Label { pc } = stmt {
            depth = nesting.depth(*pc);
            let pad = "  ".repeat(depth.saturating_sub(1));
            if nesting.is_header(*pc) {
                out.push_str(&format!("{pad}loc_{pc:x}: // loop header\n"));
            } else {
                out.push_str(&format!("{pad}loc_{pc:x}:\n"));
            }
            continue;
        }
        let pad = "  ".repeat(depth);
        out.push_str(&format!("{pad}{stmt}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lift;
    use sigrec_abi::FunctionSignature;
    use sigrec_core::SigRec;
    use sigrec_solc::{compile_single, CompilerConfig, FunctionSpec, Visibility};

    fn lifted(decl: &str, vis: Visibility) -> (Vec<u8>, crate::ir::IrProgram) {
        let sig = FunctionSignature::parse(decl).unwrap();
        let c = compile_single(FunctionSpec::new(sig, vis), &CompilerConfig::default());
        let rec = SigRec::new().recover(&c.code);
        let entries: Vec<usize> = rec.iter().map(|r| r.entry).collect();
        let program = lift(&c.code, &entries);
        (c.code, program)
    }

    #[test]
    fn copy_loop_detected_and_indented() {
        // A 2-dim static array in a public function compiles to a copy loop.
        let (code, program) = lifted("f(uint256[3][2])", Visibility::Public);
        let rendered = render_structured(&code, &program.functions[0]);
        assert!(rendered.contains("// loop header"), "{rendered}");
        // Something is indented under the loop.
        assert!(rendered.lines().any(|l| l.starts_with("  ")), "{rendered}");
    }

    #[test]
    fn straight_line_function_has_no_loops() {
        let (code, program) = lifted("f(uint8,bool)", Visibility::External);
        let rendered = render_structured(&code, &program.functions[0]);
        assert!(!rendered.contains("loop header"));
    }

    #[test]
    fn nesting_depth_query() {
        let (code, program) = lifted("f(uint256[2][2][2])", Visibility::Public);
        let func = &program.functions[0];
        let nesting = LoopNesting::compute(&code, func.entry, code.len());
        // A 3-dim static array copies through 2 nested loops.
        assert!(nesting.headers.len() >= 2, "{:?}", nesting.headers);
        let max_depth = nesting
            .headers
            .iter()
            .map(|&h| nesting.depth(h))
            .max()
            .unwrap_or(0);
        assert!(max_depth >= 2);
    }
}
