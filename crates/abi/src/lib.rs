//! # sigrec-abi
//!
//! The contract-ABI substrate of the SigRec reproduction:
//!
//! - [`AbiType`] — the Solidity parameter-type grammar (basic types, static/
//!   dynamic/nested arrays, `bytes`, `string`, structs), with canonical
//!   rendering and parsing;
//! - [`VyperType`] — Vyper's ten surface types and their lowering onto the
//!   calldata layout grammar;
//! - [`FunctionSignature`] / [`Selector`] — function ids via Keccak-256;
//! - [`encode`] / [`encode_call`] — the full head/tail ABI encoder;
//! - [`decode`] / [`decode_call`] — a strict validating decoder (padding,
//!   offsets, lengths), the foundation of ParChecker's invalid-argument
//!   detection (§6.1 of the paper).

#![warn(missing_docs)]

pub mod decode;
pub mod encode;
pub mod pretty;
pub mod sig;
pub mod types;
pub mod value;
pub mod vyper;

pub use decode::{decode, decode_call, DecodeError};
pub use encode::{encode, encode_call, EncodeError};
pub use pretty::pretty_args;
pub use sig::{FunctionSignature, Selector};
pub use types::{AbiType, TypeParseError};
pub use value::AbiValue;
pub use vyper::VyperType;
