//! Human-readable rendering of decoded call data.
//!
//! Turns `(types, values)` into an indented tree — the building block of
//! inspection tooling (the `parcheck` CLI prints suspicious transactions
//! with it).

use crate::types::AbiType;
use crate::value::AbiValue;
use std::fmt::Write as _;

/// Renders an argument list as an indented tree.
///
/// # Examples
///
/// ```
/// use sigrec_abi::{pretty_args, AbiType, AbiValue};
/// use sigrec_evm::U256;
///
/// let out = pretty_args(
///     &[AbiType::Address, AbiType::parse("uint8[]").unwrap()],
///     &[
///         AbiValue::Address(U256::from(0xabcu64)),
///         AbiValue::Array(vec![AbiValue::Uint(U256::ONE), AbiValue::Uint(U256::from(2u64))]),
///     ],
/// );
/// assert!(out.contains("[0] address = 0xabc"));
/// assert!(out.contains("[1] uint8[] (2 items)"));
/// ```
pub fn pretty_args(types: &[AbiType], values: &[AbiValue]) -> String {
    let mut out = String::new();
    for (i, (t, v)) in types.iter().zip(values).enumerate() {
        render(&mut out, &format!("[{}]", i), t, v, 0);
    }
    out
}

fn render(out: &mut String, label: &str, ty: &AbiType, value: &AbiValue, depth: usize) {
    let pad = "  ".repeat(depth);
    match (ty, value) {
        (AbiType::Array(el, _), AbiValue::Array(items))
        | (AbiType::DynArray(el), AbiValue::Array(items)) => {
            let _ = writeln!(
                out,
                "{pad}{label} {} ({} items)",
                ty.canonical(),
                items.len()
            );
            for (i, item) in items.iter().enumerate() {
                render(out, &format!("[{}]", i), el, item, depth + 1);
            }
        }
        (AbiType::Tuple(ts), AbiValue::Tuple(items)) => {
            let _ = writeln!(out, "{pad}{label} {} (struct)", ty.canonical());
            for (i, (t, item)) in ts.iter().zip(items).enumerate() {
                render(out, &format!(".{}", i), t, item, depth + 1);
            }
        }
        (AbiType::Bytes, AbiValue::Bytes(b)) => {
            let _ = writeln!(
                out,
                "{pad}{label} bytes ({} bytes) = {}",
                b.len(),
                hex_preview(b)
            );
        }
        (AbiType::String, AbiValue::Str(s)) => {
            let shown: String = s.chars().take(48).collect();
            let ellipsis = if s.len() > 48 { "…" } else { "" };
            let _ = writeln!(out, "{pad}{label} string = {:?}{}", shown, ellipsis);
        }
        _ => {
            let _ = writeln!(out, "{pad}{label} {} = {}", ty.canonical(), value);
        }
    }
}

fn hex_preview(bytes: &[u8]) -> String {
    let shown = &bytes[..bytes.len().min(24)];
    let mut s = String::with_capacity(2 + shown.len() * 2);
    s.push_str("0x");
    for b in shown {
        let _ = write!(s, "{:02x}", b);
    }
    if bytes.len() > 24 {
        s.push('…');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigrec_evm::U256;

    fn ty(s: &str) -> AbiType {
        AbiType::parse(s).unwrap()
    }

    #[test]
    fn nested_structures_indent() {
        let t = ty("(uint256[],bool)");
        let v = AbiValue::Tuple(vec![
            AbiValue::Array(vec![AbiValue::Uint(U256::ONE)]),
            AbiValue::Bool(true),
        ]);
        let out = pretty_args(std::slice::from_ref(&t), std::slice::from_ref(&v));
        assert!(out.contains("(struct)"));
        assert!(out.contains("  .0 uint256[] (1 items)"));
        assert!(out.contains("    [0] uint256 = 1"));
        assert!(out.contains("  .1 bool = true"));
    }

    #[test]
    fn long_payloads_truncate() {
        let out = pretty_args(&[ty("bytes")], &[AbiValue::Bytes(vec![0xab; 100])]);
        assert!(out.contains("(100 bytes)"));
        assert!(out.contains('…'));
        let out = pretty_args(&[ty("string")], &[AbiValue::Str("x".repeat(100))]);
        assert!(out.contains('…'));
    }

    #[test]
    fn scalar_rendering() {
        let out = pretty_args(
            &[ty("address"), ty("int8")],
            &[
                AbiValue::Address(U256::from(0x99u64)),
                AbiValue::Int(U256::from(-5i64)),
            ],
        );
        assert!(out.contains("[0] address = 0x99"));
        assert!(out.contains("[1] int8 ="));
    }
}
