//! The Solidity ABI encoder (head/tail scheme).
//!
//! Implements the contract-ABI specification the paper's §2 describes: basic
//! types extend to one 32-byte word (`uintM`/`intM`/`address`/`bool` on the
//! left, `bytesM` on the right); static composites inline their elements;
//! dynamic types contribute a 32-byte *offset* word to the head and place
//! their content (for arrays/bytes/strings: a *num* word then the payload)
//! in the tail.

use crate::sig::FunctionSignature;
use crate::types::AbiType;
use crate::value::AbiValue;
use sigrec_evm::U256;
use std::fmt;

/// Error from [`encode`] / [`encode_call`]: a value does not inhabit its
/// declared type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EncodeError {
    /// Canonical spelling of the offending type.
    pub ty: String,
    /// Display form of the offending value.
    pub value: String,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {} does not conform to ABI type {}",
            self.value, self.ty
        )
    }
}

impl std::error::Error for EncodeError {}

/// Encodes an argument list (no selector). `types` and `values` are paired
/// positionally.
///
/// # Errors
///
/// Returns [`EncodeError`] if the lengths differ or any value fails
/// [`AbiValue::conforms_to`].
///
/// # Examples
///
/// ```
/// use sigrec_abi::{encode, AbiType, AbiValue};
/// use sigrec_evm::U256;
///
/// let data = encode(&[AbiType::Uint(32)], &[AbiValue::Uint(U256::from(0x11223344u64))]).unwrap();
/// assert_eq!(data.len(), 32);
/// assert_eq!(&data[28..], &[0x11, 0x22, 0x33, 0x44]); // left-extended
/// ```
pub fn encode(types: &[AbiType], values: &[AbiValue]) -> Result<Vec<u8>, EncodeError> {
    if types.len() != values.len() {
        return Err(EncodeError {
            ty: format!("{} types", types.len()),
            value: format!("{} values", values.len()),
        });
    }
    for (t, v) in types.iter().zip(values) {
        if !v.conforms_to(t) {
            return Err(EncodeError {
                ty: t.canonical(),
                value: v.to_string(),
            });
        }
    }
    Ok(encode_sequence(types, values))
}

/// Encodes a full call-data payload: 4-byte selector followed by the
/// encoded arguments.
pub fn encode_call(sig: &FunctionSignature, values: &[AbiValue]) -> Result<Vec<u8>, EncodeError> {
    let mut out = sig.selector.0.to_vec();
    out.extend(encode(&sig.params, values)?);
    Ok(out)
}

/// Head/tail encoding of a positional sequence (the body of a tuple, an
/// argument list, or a dynamic array's items).
fn encode_sequence(types: &[AbiType], values: &[AbiValue]) -> Vec<u8> {
    let head_len: usize = types.iter().map(AbiType::head_size).sum();
    let mut head = Vec::with_capacity(head_len);
    let mut tail: Vec<u8> = Vec::new();
    for (t, v) in types.iter().zip(values) {
        if t.is_dynamic() {
            let offset = U256::from(head_len + tail.len());
            head.extend_from_slice(&offset.to_be_bytes());
            tail.extend(encode_tail(t, v));
        } else {
            head.extend(encode_static(t, v));
        }
    }
    head.extend(tail);
    head
}

/// Inline encoding of a static type.
fn encode_static(ty: &AbiType, value: &AbiValue) -> Vec<u8> {
    match (ty, value) {
        (AbiType::Uint(_), AbiValue::Uint(v))
        | (AbiType::Int(_), AbiValue::Int(v))
        | (AbiType::Address, AbiValue::Address(v)) => v.to_be_bytes().to_vec(),
        (AbiType::Bool, AbiValue::Bool(b)) => {
            let mut w = [0u8; 32];
            w[31] = *b as u8;
            w.to_vec()
        }
        (AbiType::FixedBytes(_), AbiValue::FixedBytes(b)) => {
            let mut w = [0u8; 32];
            w[..b.len()].copy_from_slice(b); // right-padded
            w.to_vec()
        }
        (AbiType::Array(el, _), AbiValue::Array(items)) => {
            let types: Vec<AbiType> = items.iter().map(|_| (**el).clone()).collect();
            encode_sequence(&types, items)
        }
        (AbiType::Tuple(ts), AbiValue::Tuple(items)) => encode_sequence(ts, items),
        _ => unreachable!("conformance checked before encoding"),
    }
}

/// Tail encoding of a dynamic type (what the head offset points at).
fn encode_tail(ty: &AbiType, value: &AbiValue) -> Vec<u8> {
    match (ty, value) {
        (AbiType::Bytes, AbiValue::Bytes(b)) => encode_byte_payload(b),
        (AbiType::String, AbiValue::Str(s)) => encode_byte_payload(s.as_bytes()),
        (AbiType::DynArray(el), AbiValue::Array(items)) => {
            let mut out = U256::from(items.len()).to_be_bytes().to_vec();
            let types: Vec<AbiType> = items.iter().map(|_| (**el).clone()).collect();
            out.extend(encode_sequence(&types, items));
            out
        }
        // A dynamic static-count array or dynamic tuple: no num field, just
        // the head/tail sequence of its elements.
        (AbiType::Array(el, _), AbiValue::Array(items)) => {
            let types: Vec<AbiType> = items.iter().map(|_| (**el).clone()).collect();
            encode_sequence(&types, items)
        }
        (AbiType::Tuple(ts), AbiValue::Tuple(items)) => encode_sequence(ts, items),
        _ => unreachable!("conformance checked before encoding"),
    }
}

/// `num` word (byte length before padding) followed by right-zero-padded
/// payload — the §2.3.1 `bytes`/`string` layout.
fn encode_byte_payload(bytes: &[u8]) -> Vec<u8> {
    let mut out = U256::from(bytes.len()).to_be_bytes().to_vec();
    out.extend_from_slice(bytes);
    let rem = bytes.len() % 32;
    if rem != 0 {
        out.extend(std::iter::repeat_n(0u8, 32 - rem));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(s: &str) -> AbiType {
        AbiType::parse(s).unwrap()
    }

    fn u(v: u64) -> AbiValue {
        AbiValue::Uint(U256::from(v))
    }

    fn word(n: u64) -> Vec<u8> {
        U256::from(n).to_be_bytes().to_vec()
    }

    #[test]
    fn uint32_left_extended() {
        // Fig. 3 of the paper: uint32 value 0x11223344.
        let data = encode(&[ty("uint32")], &[u(0x11223344)]).unwrap();
        let mut expect = vec![0u8; 32];
        expect[28..].copy_from_slice(&[0x11, 0x22, 0x33, 0x44]);
        assert_eq!(data, expect);
    }

    #[test]
    fn bytes4_right_extended() {
        // Fig. 4 of the paper: bytes4 'abcd'.
        let data = encode(&[ty("bytes4")], &[AbiValue::FixedBytes(b"abcd".to_vec())]).unwrap();
        let mut expect = vec![0u8; 32];
        expect[..4].copy_from_slice(b"abcd");
        assert_eq!(data, expect);
    }

    #[test]
    fn static_array_consecutive() {
        // Fig. 5: uint256[3][2] is six consecutive words.
        let inner1 = AbiValue::Array(vec![u(1), u(2), u(3)]);
        let inner2 = AbiValue::Array(vec![u(4), u(5), u(6)]);
        let data = encode(
            &[ty("uint256[3][2]")],
            &[AbiValue::Array(vec![inner1, inner2])],
        )
        .unwrap();
        assert_eq!(data.len(), 192);
        for (i, expected) in (1u64..=6).enumerate() {
            assert_eq!(&data[i * 32..(i + 1) * 32], word(expected).as_slice());
        }
    }

    #[test]
    fn dynamic_array_offset_and_num() {
        // Fig. 6: uint256[3][] with actual argument uint256[3][2].
        let inner1 = AbiValue::Array(vec![u(1), u(2), u(3)]);
        let inner2 = AbiValue::Array(vec![u(4), u(5), u(6)]);
        let data = encode(
            &[ty("uint256[3][]")],
            &[AbiValue::Array(vec![inner1, inner2])],
        )
        .unwrap();
        // Head: one offset word pointing at byte 32 (relative to arg start).
        assert_eq!(&data[0..32], word(32).as_slice());
        // num = 2, then six items.
        assert_eq!(&data[32..64], word(2).as_slice());
        assert_eq!(data.len(), 32 + 32 + 192);
        assert_eq!(&data[64..96], word(1).as_slice());
        assert_eq!(&data[data.len() - 32..], word(6).as_slice());
    }

    #[test]
    fn nested_array_per_item_offsets() {
        // Fig. 7: uint256[][] with argument [[1,2],[3]].
        let v = AbiValue::Array(vec![
            AbiValue::Array(vec![u(1), u(2)]),
            AbiValue::Array(vec![u(3)]),
        ]);
        let data = encode(&[ty("uint256[][]")], &[v]).unwrap();
        // offset1 -> num1.
        assert_eq!(&data[0..32], word(32).as_slice());
        assert_eq!(&data[32..64], word(2).as_slice()); // num1
                                                       // Two inner offsets, relative to after num1.
        let off2 = U256::from_be_bytes(&data[64..96]).as_usize().unwrap();
        let off3 = U256::from_be_bytes(&data[96..128]).as_usize().unwrap();
        let base = 64; // item area starts after offset1 + num1
        assert_eq!(
            U256::from_be_bytes(&data[base + off2..base + off2 + 32]),
            U256::from(2u64)
        ); // num2
        assert_eq!(
            U256::from_be_bytes(&data[base + off3..base + off3 + 32]),
            U256::from(1u64)
        ); // num3
        assert_eq!(
            U256::from_be_bytes(&data[base + off3 + 32..base + off3 + 64]),
            U256::from(3u64)
        );
    }

    #[test]
    fn bytes_padded_to_word_multiple() {
        let data = encode(&[ty("bytes")], &[AbiValue::Bytes(b"abcd".to_vec())]).unwrap();
        assert_eq!(&data[0..32], word(32).as_slice()); // offset
        assert_eq!(&data[32..64], word(4).as_slice()); // num = unpadded length
        assert_eq!(&data[64..68], b"abcd");
        assert!(data[68..96].iter().all(|&b| b == 0));
        assert_eq!(data.len(), 96);
    }

    #[test]
    fn empty_bytes_has_no_payload_words() {
        let data = encode(&[ty("bytes")], &[AbiValue::Bytes(Vec::new())]).unwrap();
        assert_eq!(data.len(), 64); // offset + num only
        assert_eq!(&data[32..64], word(0).as_slice());
    }

    #[test]
    fn string_same_layout_as_bytes() {
        let b = encode(&[ty("bytes")], &[AbiValue::Bytes(b"hi".to_vec())]).unwrap();
        let s = encode(&[ty("string")], &[AbiValue::Str("hi".into())]).unwrap();
        assert_eq!(b, s);
    }

    #[test]
    fn static_struct_same_layout_as_flattened() {
        // Fig. 8: (uint256,uint256) == two uint256 params.
        let tup = encode(
            &[ty("(uint256,uint256)")],
            &[AbiValue::Tuple(vec![u(10), u(20)])],
        )
        .unwrap();
        let flat = encode(&[ty("uint256"), ty("uint256")], &[u(10), u(20)]).unwrap();
        assert_eq!(tup, flat);
    }

    #[test]
    fn dynamic_struct_layout() {
        // Fig. 9: (uint256[],uint256) with argument ([1,2], 3).
        let v = AbiValue::Tuple(vec![AbiValue::Array(vec![u(1), u(2)]), u(3)]);
        let data = encode(&[ty("(uint256[],uint256)")], &[v]).unwrap();
        // offset1 (struct) -> struct body.
        assert_eq!(&data[0..32], word(32).as_slice());
        // Struct body: offset2 (array head) then item 3.
        assert_eq!(&data[32..64], word(64).as_slice()); // offset2 relative to struct body
        assert_eq!(&data[64..96], word(3).as_slice());
        assert_eq!(&data[96..128], word(2).as_slice()); // num1
        assert_eq!(&data[128..160], word(1).as_slice());
        assert_eq!(&data[160..192], word(2).as_slice());
    }

    #[test]
    fn multiple_dynamic_args_offsets_in_order() {
        let data = encode(
            &[ty("uint8[]"), ty("bytes")],
            &[AbiValue::Array(vec![u(9)]), AbiValue::Bytes(vec![0xee; 3])],
        )
        .unwrap();
        let off1 = U256::from_be_bytes(&data[0..32]).as_usize().unwrap();
        let off2 = U256::from_be_bytes(&data[32..64]).as_usize().unwrap();
        assert_eq!(off1, 64);
        assert_eq!(off2, 64 + 32 + 32); // after arg1's num + one item
        assert_eq!(
            U256::from_be_bytes(&data[off2..off2 + 32]),
            U256::from(3u64)
        );
    }

    #[test]
    fn encode_call_prepends_selector() {
        let sig = FunctionSignature::parse("transfer(address,uint256)").unwrap();
        let data = encode_call(&sig, &[AbiValue::Address(U256::from(0xbeefu64)), u(1000)]).unwrap();
        assert_eq!(&data[..4], &[0xa9, 0x05, 0x9c, 0xbb]);
        assert_eq!(data.len(), 4 + 64);
    }

    #[test]
    fn nonconforming_value_rejected() {
        let err = encode(&[ty("uint8")], &[u(300)]).unwrap_err();
        assert!(err.to_string().contains("uint8"));
        assert!(encode(&[ty("uint8")], &[]).is_err());
    }
}
