//! Runtime argument values for ABI encoding.

use crate::types::AbiType;
use sigrec_evm::U256;
use std::fmt;

/// An argument value, paired with an [`AbiType`] when encoding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AbiValue {
    /// Value for `uintM` (must fit in M bits).
    Uint(U256),
    /// Value for `intM`, stored in two's-complement 256-bit form.
    Int(U256),
    /// Value for `address` (low 160 bits).
    Address(U256),
    /// Value for `bool`.
    Bool(bool),
    /// Value for `bytesM` (exactly M bytes).
    FixedBytes(Vec<u8>),
    /// Value for `bytes`.
    Bytes(Vec<u8>),
    /// Value for `string`.
    Str(String),
    /// Value for `T[N]` and `T[]`.
    Array(Vec<AbiValue>),
    /// Value for tuples/structs.
    Tuple(Vec<AbiValue>),
}

impl AbiValue {
    /// Checks that this value is a well-typed inhabitant of `ty`: variant
    /// match, width fit, element counts, recursive element types.
    pub fn conforms_to(&self, ty: &AbiType) -> bool {
        match (self, ty) {
            (AbiValue::Uint(v), AbiType::Uint(m)) => *m == 256 || *v <= U256::low_mask(*m as u32),
            (AbiValue::Int(v), AbiType::Int(m)) => {
                if *m == 256 {
                    true
                } else {
                    // Value must be a sign-extended M-bit integer.
                    v.sign_extend(U256::from((m / 8 - 1) as u64)) == *v
                }
            }
            (AbiValue::Address(v), AbiType::Address) => *v <= U256::low_mask(160),
            (AbiValue::Bool(_), AbiType::Bool) => true,
            (AbiValue::FixedBytes(b), AbiType::FixedBytes(m)) => b.len() == *m as usize,
            (AbiValue::Bytes(_), AbiType::Bytes) => true,
            (AbiValue::Str(_), AbiType::String) => true,
            (AbiValue::Array(items), AbiType::Array(el, n)) => {
                items.len() == *n && items.iter().all(|i| i.conforms_to(el))
            }
            (AbiValue::Array(items), AbiType::DynArray(el)) => {
                items.iter().all(|i| i.conforms_to(el))
            }
            (AbiValue::Tuple(items), AbiType::Tuple(tys)) => {
                items.len() == tys.len() && items.iter().zip(tys).all(|(v, t)| v.conforms_to(t))
            }
            _ => false,
        }
    }

    /// A canonical zero/empty value of `ty` (zero integers, empty arrays
    /// and byte strings, recursively zeroed static composites).
    pub fn zero_of(ty: &AbiType) -> AbiValue {
        match ty {
            AbiType::Uint(_) => AbiValue::Uint(U256::ZERO),
            AbiType::Int(_) => AbiValue::Int(U256::ZERO),
            AbiType::Address => AbiValue::Address(U256::ZERO),
            AbiType::Bool => AbiValue::Bool(false),
            AbiType::FixedBytes(m) => AbiValue::FixedBytes(vec![0; *m as usize]),
            AbiType::Bytes => AbiValue::Bytes(Vec::new()),
            AbiType::String => AbiValue::Str(String::new()),
            AbiType::Array(el, n) => {
                AbiValue::Array((0..*n).map(|_| AbiValue::zero_of(el)).collect())
            }
            AbiType::DynArray(_) => AbiValue::Array(Vec::new()),
            AbiType::Tuple(ts) => AbiValue::Tuple(ts.iter().map(AbiValue::zero_of).collect()),
        }
    }
}

impl fmt::Display for AbiValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbiValue::Uint(v) | AbiValue::Int(v) => write!(f, "{}", v),
            AbiValue::Address(v) => write!(f, "0x{:x}", v),
            AbiValue::Bool(b) => write!(f, "{}", b),
            AbiValue::FixedBytes(b) | AbiValue::Bytes(b) => {
                write!(f, "0x")?;
                for byte in b {
                    write!(f, "{:02x}", byte)?;
                }
                Ok(())
            }
            AbiValue::Str(s) => write!(f, "{:?}", s),
            AbiValue::Array(items) | AbiValue::Tuple(items) => {
                let open = if matches!(self, AbiValue::Array(_)) {
                    '['
                } else {
                    '('
                };
                let close = if open == '[' { ']' } else { ')' };
                write!(f, "{}", open)?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", item)?;
                }
                write!(f, "{}", close)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(s: &str) -> AbiType {
        AbiType::parse(s).unwrap()
    }

    #[test]
    fn conformance_basic() {
        assert!(AbiValue::Uint(U256::from(255u64)).conforms_to(&ty("uint8")));
        assert!(!AbiValue::Uint(U256::from(256u64)).conforms_to(&ty("uint8")));
        assert!(AbiValue::Int(U256::from(-128i64)).conforms_to(&ty("int8")));
        assert!(!AbiValue::Int(U256::from(-129i64)).conforms_to(&ty("int8")));
        assert!(AbiValue::Int(U256::from(127i64)).conforms_to(&ty("int8")));
        assert!(!AbiValue::Int(U256::from(128i64)).conforms_to(&ty("int8")));
        assert!(AbiValue::Address(U256::low_mask(160)).conforms_to(&ty("address")));
        assert!(!AbiValue::Address(U256::low_mask(161)).conforms_to(&ty("address")));
        assert!(!AbiValue::Uint(U256::ZERO).conforms_to(&ty("bool")));
    }

    #[test]
    fn conformance_composite() {
        let v = AbiValue::Array(vec![
            AbiValue::Uint(U256::ONE),
            AbiValue::Uint(U256::from(2u64)),
        ]);
        assert!(v.conforms_to(&ty("uint8[2]")));
        assert!(!v.conforms_to(&ty("uint8[3]")));
        assert!(v.conforms_to(&ty("uint8[]")));
        let t = AbiValue::Tuple(vec![AbiValue::Bool(true), AbiValue::Str("x".into())]);
        assert!(t.conforms_to(&ty("(bool,string)")));
        assert!(!t.conforms_to(&ty("(bool,bytes)")));
    }

    #[test]
    fn zero_values_conform() {
        for s in [
            "uint8",
            "int256",
            "address",
            "bool",
            "bytes4",
            "bytes",
            "string",
            "uint256[3]",
            "uint8[]",
            "(uint256,string)",
            "uint8[2][]",
        ] {
            let t = ty(s);
            assert!(
                AbiValue::zero_of(&t).conforms_to(&t),
                "zero of {} must conform",
                s
            );
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(AbiValue::Uint(U256::from(7u64)).to_string(), "7");
        assert_eq!(AbiValue::Bytes(vec![0xab, 0xcd]).to_string(), "0xabcd");
        assert_eq!(
            AbiValue::Array(vec![AbiValue::Bool(true), AbiValue::Bool(false)]).to_string(),
            "[true, false]"
        );
        assert_eq!(
            AbiValue::Tuple(vec![AbiValue::Uint(U256::ONE)]).to_string(),
            "(1)"
        );
    }
}
