//! Function signatures and 4-byte selectors.
//!
//! A *function signature* in the paper's sense is a function id (the first
//! four bytes of the Keccak-256 hash of `name(type1,type2,…)`) plus the
//! ordered list of parameter types. Recovery works from bytecode, so the
//! name itself is unrecoverable — [`FunctionSignature`] stores the selector
//! and types, with the name kept only when it is known (ground truth).

use crate::types::{AbiType, TypeParseError};
use sigrec_evm::keccak256;
use std::fmt;

/// A 4-byte function id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Selector(pub [u8; 4]);

impl Selector {
    /// Computes the selector of a canonical signature string.
    ///
    /// # Examples
    ///
    /// ```
    /// use sigrec_abi::Selector;
    ///
    /// let s = Selector::of("transfer(address,uint256)");
    /// assert_eq!(s.to_string(), "0xa9059cbb");
    /// ```
    pub fn of(canonical_signature: &str) -> Selector {
        let d = keccak256(canonical_signature.as_bytes());
        Selector([d[0], d[1], d[2], d[3]])
    }

    /// The selector as a big-endian `u32`.
    pub fn as_u32(&self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Builds a selector from a big-endian `u32`.
    pub fn from_u32(v: u32) -> Selector {
        Selector(v.to_be_bytes())
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "0x{:02x}{:02x}{:02x}{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// A function signature: selector plus ordered parameter types.
///
/// `name` is `Some` only for ground-truth signatures (from the corpus
/// generator); recovered signatures have `name == None` and render as
/// `func_a9059cbb(address,uint256)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FunctionSignature {
    /// The 4-byte function id.
    pub selector: Selector,
    /// Parameter types in declaration order.
    pub params: Vec<AbiType>,
    /// Source-level name, when known.
    pub name: Option<String>,
}

impl FunctionSignature {
    /// Builds the ground-truth signature of `name(params…)`, computing the
    /// selector from the canonical string.
    pub fn from_declaration(name: &str, params: Vec<AbiType>) -> Self {
        let canonical = render(name, &params);
        FunctionSignature {
            selector: Selector::of(&canonical),
            params,
            name: Some(name.to_string()),
        }
    }

    /// Builds a recovered signature (no name) from a selector and types.
    pub fn recovered(selector: Selector, params: Vec<AbiType>) -> Self {
        FunctionSignature {
            selector,
            params,
            name: None,
        }
    }

    /// Parses a declaration like `transfer(address,uint256)`.
    pub fn parse(decl: &str) -> Result<Self, TypeParseError> {
        let open = decl
            .find('(')
            .ok_or_else(|| TypeParseError::new(decl, "missing parameter list"))?;
        let name = &decl[..open];
        let inner = decl[open..].trim();
        let params = if inner == "()" {
            Vec::new()
        } else {
            // Parse as a tuple, then unwrap its fields.
            match AbiType::parse(inner)? {
                AbiType::Tuple(ts) => ts,
                single => vec![single],
            }
        };
        Ok(FunctionSignature::from_declaration(name, params))
    }

    /// The canonical parameter-list string, e.g. `(address,uint256)`.
    pub fn param_list(&self) -> String {
        let inner: Vec<String> = self.params.iter().map(AbiType::canonical).collect();
        format!("({})", inner.join(","))
    }

    /// The canonical full signature. Recovered signatures use the
    /// placeholder name `func_<selector>`.
    pub fn canonical(&self) -> String {
        match &self.name {
            Some(n) => format!("{}{}", n, self.param_list()),
            None => format!("func_{:08x}{}", self.selector.as_u32(), self.param_list()),
        }
    }

    /// True if `other` recovers this signature correctly per the paper's
    /// criterion (§5.2): same function id, same number, order, and types of
    /// parameters. Names are not compared.
    pub fn matches(&self, other: &FunctionSignature) -> bool {
        self.selector == other.selector && self.params == other.params
    }
}

impl fmt::Display for FunctionSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.canonical(), self.selector)
    }
}

fn render(name: &str, params: &[AbiType]) -> String {
    let inner: Vec<String> = params.iter().map(AbiType::canonical).collect();
    format!("{}({})", name, inner.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_selector() {
        let sig = FunctionSignature::from_declaration(
            "transfer",
            vec![AbiType::Address, AbiType::Uint(256)],
        );
        assert_eq!(sig.selector, Selector([0xa9, 0x05, 0x9c, 0xbb]));
        assert_eq!(sig.canonical(), "transfer(address,uint256)");
    }

    #[test]
    fn parse_declaration() {
        let sig = FunctionSignature::parse("transferFrom(address,address,uint256)").unwrap();
        assert_eq!(sig.selector.to_string(), "0x23b872dd");
        assert_eq!(sig.params.len(), 3);
    }

    #[test]
    fn parse_no_params() {
        let sig = FunctionSignature::parse("totalSupply()").unwrap();
        assert!(sig.params.is_empty());
        assert_eq!(sig.selector.to_string(), "0x18160ddd");
    }

    #[test]
    fn parse_single_param() {
        let sig = FunctionSignature::parse("balanceOf(address)").unwrap();
        assert_eq!(sig.params, vec![AbiType::Address]);
        assert_eq!(sig.selector.to_string(), "0x70a08231");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FunctionSignature::parse("no_parens").is_err());
        assert!(FunctionSignature::parse("f(uint7)").is_err());
    }

    #[test]
    fn recovered_matches_ground_truth_ignoring_name() {
        let truth = FunctionSignature::parse("transfer(address,uint256)").unwrap();
        let rec = FunctionSignature::recovered(
            truth.selector,
            vec![AbiType::Address, AbiType::Uint(256)],
        );
        assert!(truth.matches(&rec));
        assert_eq!(rec.canonical(), "func_a9059cbb(address,uint256)");
        let wrong = FunctionSignature::recovered(truth.selector, vec![AbiType::Uint(256)]);
        assert!(!truth.matches(&wrong));
    }

    #[test]
    fn selector_u32_round_trip() {
        let s = Selector::of("f()");
        assert_eq!(Selector::from_u32(s.as_u32()), s);
    }
}
