//! Vyper's surface type system (§2.3.2 of the paper).
//!
//! Vyper supports ten parameter types. Five coincide with Solidity types
//! (`bool`, `int128`, `uint256`, `address`, `bytes32`); the other five are
//! Vyper-specific: `decimal`, fixed-size lists, fixed-size byte arrays,
//! fixed-size strings, and structs. [`VyperType`] models the surface
//! grammar; [`VyperType::lower`] maps each type to the [`AbiType`] that
//! describes its calldata layout (what the recovery tool can actually see).

use crate::types::AbiType;
use std::fmt;

/// A Vyper parameter type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum VyperType {
    /// `bool`.
    Bool,
    /// `int128`.
    Int128,
    /// `uint256`.
    Uint256,
    /// `address`.
    Address,
    /// `bytes32`.
    Bytes32,
    /// `decimal`: fixed-point with 10 decimal places, range ±2¹²⁷.
    Decimal,
    /// Fixed-size list `T[N1]…[Nn]`: dimensions from outermost to innermost.
    FixedList(Box<VyperType>, usize),
    /// `bytes[maxLen]`: byte sequence with a compile-time maximum length.
    FixedBytes(usize),
    /// `string[maxLen]`: string with a compile-time maximum length.
    FixedString(usize),
    /// `struct { T1, …, Tn }` of basic types.
    Struct(Vec<VyperType>),
}

impl VyperType {
    /// True for the six single-word types a fixed-size list may contain.
    pub fn is_basic(&self) -> bool {
        matches!(
            self,
            VyperType::Bool
                | VyperType::Int128
                | VyperType::Uint256
                | VyperType::Address
                | VyperType::Bytes32
                | VyperType::Decimal
        )
    }

    /// Validates the grammar: list elements basic (possibly via nested
    /// lists), struct items basic, positive sizes.
    pub fn is_well_formed(&self) -> bool {
        match self {
            t if t.is_basic() => true,
            VyperType::FixedList(el, n) => {
                *n >= 1
                    && (el.is_basic() || matches!(**el, VyperType::FixedList(..)))
                    && el.is_well_formed()
            }
            VyperType::FixedBytes(m) | VyperType::FixedString(m) => *m >= 1,
            VyperType::Struct(items) => !items.is_empty() && items.iter().all(VyperType::is_basic),
            _ => unreachable!(),
        }
    }

    /// The calldata-layout type: what the access pattern in bytecode
    /// corresponds to, and therefore what SigRec recovers.
    ///
    /// `decimal` lowers to `int168` per the canonical `fixed168x10` ABI
    /// encoding's storage width (a 168-bit signed integer scaled by 10¹⁰).
    /// `bytes[maxLen]`/`string[maxLen]` lower to dynamic `bytes`/`string`
    /// (the layout is identical; only the in-contract bound check differs).
    /// A struct lowers to its flattened items (§2.3.2: indistinguishable
    /// from the items not being in a struct).
    pub fn lower(&self) -> Vec<AbiType> {
        match self {
            VyperType::Bool => vec![AbiType::Bool],
            VyperType::Int128 => vec![AbiType::Int(128)],
            VyperType::Uint256 => vec![AbiType::Uint(256)],
            VyperType::Address => vec![AbiType::Address],
            VyperType::Bytes32 => vec![AbiType::FixedBytes(32)],
            VyperType::Decimal => vec![AbiType::Int(168)],
            VyperType::FixedList(el, n) => {
                let inner = el.lower();
                debug_assert_eq!(inner.len(), 1, "list elements are single-slot");
                vec![AbiType::Array(Box::new(inner[0].clone()), *n)]
            }
            VyperType::FixedBytes(_) => vec![AbiType::Bytes],
            VyperType::FixedString(_) => vec![AbiType::String],
            VyperType::Struct(items) => items.iter().flat_map(VyperType::lower).collect(),
        }
    }

    /// The Vyper source spelling.
    pub fn vyper_spelling(&self) -> String {
        match self {
            VyperType::Bool => "bool".into(),
            VyperType::Int128 => "int128".into(),
            VyperType::Uint256 => "uint256".into(),
            VyperType::Address => "address".into(),
            VyperType::Bytes32 => "bytes32".into(),
            VyperType::Decimal => "decimal".into(),
            VyperType::FixedList(el, n) => format!("{}[{}]", el.vyper_spelling(), n),
            VyperType::FixedBytes(m) => format!("bytes[{}]", m),
            VyperType::FixedString(m) => format!("string[{}]", m),
            VyperType::Struct(items) => {
                let inner: Vec<String> = items.iter().map(VyperType::vyper_spelling).collect();
                format!("{{{}}}", inner.join(", "))
            }
        }
    }
}

impl fmt::Display for VyperType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.vyper_spelling())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics_lower_to_solidity_equivalents() {
        assert_eq!(VyperType::Bool.lower(), vec![AbiType::Bool]);
        assert_eq!(VyperType::Int128.lower(), vec![AbiType::Int(128)]);
        assert_eq!(VyperType::Uint256.lower(), vec![AbiType::Uint(256)]);
        assert_eq!(VyperType::Address.lower(), vec![AbiType::Address]);
        assert_eq!(VyperType::Bytes32.lower(), vec![AbiType::FixedBytes(32)]);
        assert_eq!(VyperType::Decimal.lower(), vec![AbiType::Int(168)]);
    }

    #[test]
    fn fixed_list_lowers_to_static_array() {
        let t = VyperType::FixedList(Box::new(VyperType::Uint256), 3);
        assert_eq!(t.lower()[0].canonical(), "uint256[3]");
        let nested = VyperType::FixedList(Box::new(t), 2);
        assert_eq!(nested.lower()[0].canonical(), "uint256[3][2]");
    }

    #[test]
    fn byte_array_and_string_lower_to_dynamic() {
        assert_eq!(VyperType::FixedBytes(50).lower(), vec![AbiType::Bytes]);
        assert_eq!(VyperType::FixedString(10).lower(), vec![AbiType::String]);
    }

    #[test]
    fn struct_flattens() {
        // §2.3.2: a struct's layout equals its items side by side.
        let s = VyperType::Struct(vec![VyperType::Uint256, VyperType::Uint256]);
        assert_eq!(s.lower(), vec![AbiType::Uint(256), AbiType::Uint(256)]);
    }

    #[test]
    fn well_formedness() {
        assert!(VyperType::Decimal.is_well_formed());
        assert!(VyperType::FixedList(Box::new(VyperType::Bool), 4).is_well_formed());
        assert!(!VyperType::FixedList(Box::new(VyperType::Bool), 0).is_well_formed());
        assert!(!VyperType::FixedList(Box::new(VyperType::FixedBytes(3)), 2).is_well_formed());
        assert!(!VyperType::Struct(vec![]).is_well_formed());
        assert!(!VyperType::Struct(vec![VyperType::FixedString(5)]).is_well_formed());
        assert!(!VyperType::FixedBytes(0).is_well_formed());
    }

    #[test]
    fn spellings() {
        assert_eq!(
            VyperType::FixedList(Box::new(VyperType::Decimal), 7).to_string(),
            "decimal[7]"
        );
        assert_eq!(VyperType::FixedBytes(50).to_string(), "bytes[50]");
        assert_eq!(
            VyperType::Struct(vec![VyperType::Uint256, VyperType::Bool]).to_string(),
            "{uint256, bool}"
        );
    }
}
