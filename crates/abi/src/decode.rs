//! A strict, validating ABI decoder.
//!
//! This is the foundation of ParChecker (§6.1 of the paper): given the
//! recovered parameter types and the raw call data, decode every argument
//! *and reject malformed encodings* — wrong padding (the short-address
//! attack leaves a truncated address whose missing bytes are stolen from the
//! next argument), out-of-range offsets, inconsistent lengths, and
//! non-boolean booleans.

use crate::types::AbiType;
use crate::value::AbiValue;
use sigrec_evm::U256;
use std::fmt;

/// Why a call-data payload failed validation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Data ended before a required word (truncated calldata — the hallmark
    /// of a short-address attack).
    OutOfBounds {
        /// Byte offset of the word that could not be read.
        at: usize,
        /// What the decoder was reading.
        context: &'static str,
    },
    /// A `uintM`/`address` word had non-zero bits above the type's width.
    BadLeftPadding {
        /// The offending type.
        ty: String,
        /// Byte offset of the word.
        at: usize,
    },
    /// A `bytesM` word (or `bytes`/`string` final word) had non-zero bits
    /// below the payload.
    BadRightPadding {
        /// The offending type.
        ty: String,
        /// Byte offset of the word.
        at: usize,
    },
    /// An `intM` word was not a valid sign-extended M-bit value.
    BadSignExtension {
        /// The offending type.
        ty: String,
        /// Byte offset of the word.
        at: usize,
    },
    /// A `bool` word held something other than 0 or 1.
    BadBool {
        /// Byte offset of the word.
        at: usize,
    },
    /// An offset or length word exceeded the calldata or `usize`.
    Unrepresentable {
        /// What the oversized word was.
        context: &'static str,
        /// Byte offset of the word.
        at: usize,
    },
}

impl DecodeError {
    /// True for the error classes a truncated (short-address style) payload
    /// produces.
    pub fn is_truncation(&self) -> bool {
        matches!(self, DecodeError::OutOfBounds { .. })
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::OutOfBounds { at, context } => {
                write!(f, "calldata ends before {} at byte {}", context, at)
            }
            DecodeError::BadLeftPadding { ty, at } => {
                write!(f, "non-zero high-order padding for {} at byte {}", ty, at)
            }
            DecodeError::BadRightPadding { ty, at } => {
                write!(f, "non-zero low-order padding for {} at byte {}", ty, at)
            }
            DecodeError::BadSignExtension { ty, at } => {
                write!(f, "invalid sign extension for {} at byte {}", ty, at)
            }
            DecodeError::BadBool { at } => write!(f, "non-boolean bool word at byte {}", at),
            DecodeError::Unrepresentable { context, at } => {
                write!(f, "unrepresentable {} at byte {}", context, at)
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes and validates an argument list (no selector).
///
/// # Examples
///
/// ```
/// use sigrec_abi::{encode, decode, AbiType, AbiValue};
/// use sigrec_evm::U256;
///
/// let types = [AbiType::Address, AbiType::Uint(256)];
/// let values = [AbiValue::Address(U256::from(7u64)), AbiValue::Uint(U256::from(9u64))];
/// let data = encode(&types, &values).unwrap();
/// assert_eq!(decode(&types, &data).unwrap(), values);
/// // A truncated payload (short-address attack shape) is rejected:
/// assert!(decode(&types, &data[..63]).is_err());
/// ```
pub fn decode(types: &[AbiType], data: &[u8]) -> Result<Vec<AbiValue>, DecodeError> {
    let mut d = Decoder { data };
    d.sequence(types, 0)
}

/// Decodes a full call payload (selector + arguments), returning the raw
/// selector bytes and the values.
pub fn decode_call(
    types: &[AbiType],
    calldata: &[u8],
) -> Result<([u8; 4], Vec<AbiValue>), DecodeError> {
    if calldata.len() < 4 {
        return Err(DecodeError::OutOfBounds {
            at: 0,
            context: "function id",
        });
    }
    let mut sel = [0u8; 4];
    sel.copy_from_slice(&calldata[..4]);
    Ok((sel, decode(types, &calldata[4..])?))
}

struct Decoder<'a> {
    data: &'a [u8],
}

impl<'a> Decoder<'a> {
    fn word(&self, at: usize, context: &'static str) -> Result<U256, DecodeError> {
        if at + 32 > self.data.len() {
            return Err(DecodeError::OutOfBounds { at, context });
        }
        Ok(U256::from_be_bytes(&self.data[at..at + 32]))
    }

    fn usize_word(&self, at: usize, context: &'static str) -> Result<usize, DecodeError> {
        let w = self.word(at, context)?;
        match w.as_usize() {
            // Cap at calldata length: any in-range offset/length fits well
            // below this and anything larger is malformed anyway.
            Some(v) if v <= self.data.len() => Ok(v),
            _ => Err(DecodeError::Unrepresentable { context, at }),
        }
    }

    /// Decodes a head/tail sequence whose head starts at `base`.
    fn sequence(&mut self, types: &[AbiType], base: usize) -> Result<Vec<AbiValue>, DecodeError> {
        let mut out = Vec::with_capacity(types.len());
        let mut head = base;
        for t in types {
            if t.is_dynamic() {
                let rel = self.usize_word(head, "offset field")?;
                out.push(self.dynamic_value(t, base + rel)?);
                head += 32;
            } else {
                out.push(self.static_value(t, &mut head)?);
            }
        }
        Ok(out)
    }

    /// Decodes a static value inline at `*at`, advancing it.
    fn static_value(&mut self, ty: &AbiType, at: &mut usize) -> Result<AbiValue, DecodeError> {
        match ty {
            AbiType::Uint(m) => {
                let w = self.word(*at, "uint value")?;
                if *m < 256 && w > U256::low_mask(*m as u32) {
                    return Err(DecodeError::BadLeftPadding {
                        ty: ty.canonical(),
                        at: *at,
                    });
                }
                *at += 32;
                Ok(AbiValue::Uint(w))
            }
            AbiType::Int(m) => {
                let w = self.word(*at, "int value")?;
                if *m < 256 && w.sign_extend(U256::from((m / 8 - 1) as u64)) != w {
                    return Err(DecodeError::BadSignExtension {
                        ty: ty.canonical(),
                        at: *at,
                    });
                }
                *at += 32;
                Ok(AbiValue::Int(w))
            }
            AbiType::Address => {
                let w = self.word(*at, "address value")?;
                if w > U256::low_mask(160) {
                    return Err(DecodeError::BadLeftPadding {
                        ty: ty.canonical(),
                        at: *at,
                    });
                }
                *at += 32;
                Ok(AbiValue::Address(w))
            }
            AbiType::Bool => {
                let w = self.word(*at, "bool value")?;
                if w > U256::ONE {
                    return Err(DecodeError::BadBool { at: *at });
                }
                *at += 32;
                Ok(AbiValue::Bool(w == U256::ONE))
            }
            AbiType::FixedBytes(m) => {
                let w = self.word(*at, "bytesM value")?;
                if w & !U256::high_mask(8 * *m as u32) != U256::ZERO {
                    return Err(DecodeError::BadRightPadding {
                        ty: ty.canonical(),
                        at: *at,
                    });
                }
                let bytes = w.to_be_bytes()[..*m as usize].to_vec();
                *at += 32;
                Ok(AbiValue::FixedBytes(bytes))
            }
            AbiType::Array(el, n) => {
                let mut items = Vec::with_capacity(*n);
                for _ in 0..*n {
                    items.push(self.static_value(el, at)?);
                }
                Ok(AbiValue::Array(items))
            }
            AbiType::Tuple(ts) => {
                let mut items = Vec::with_capacity(ts.len());
                for t in ts {
                    items.push(self.static_value(t, at)?);
                }
                Ok(AbiValue::Tuple(items))
            }
            AbiType::Bytes | AbiType::String | AbiType::DynArray(_) => {
                unreachable!("dynamic types are decoded via dynamic_value")
            }
        }
    }

    /// Decodes a dynamic value whose content begins at absolute `at`.
    fn dynamic_value(&mut self, ty: &AbiType, at: usize) -> Result<AbiValue, DecodeError> {
        match ty {
            AbiType::Bytes => Ok(AbiValue::Bytes(self.byte_payload(at, ty)?)),
            AbiType::String => {
                let raw = self.byte_payload(at, ty)?;
                // Lossy conversion: the chain does not enforce UTF-8, and
                // neither does ParChecker.
                Ok(AbiValue::Str(String::from_utf8_lossy(&raw).into_owned()))
            }
            AbiType::DynArray(el) => {
                let n = self.usize_word(at, "num field")?;
                let types: Vec<AbiType> = (0..n).map(|_| (**el).clone()).collect();
                Ok(AbiValue::Array(self.sequence(&types, at + 32)?))
            }
            // Dynamic-but-fixed-count composites: a head/tail sequence with
            // no num field.
            AbiType::Array(el, n) => {
                let types: Vec<AbiType> = (0..*n).map(|_| (**el).clone()).collect();
                Ok(AbiValue::Array(self.sequence(&types, at)?))
            }
            AbiType::Tuple(ts) => Ok(AbiValue::Tuple(self.sequence(ts, at)?)),
            _ => unreachable!("static types are decoded via static_value"),
        }
    }

    /// Reads a num-prefixed, right-padded byte payload and validates the
    /// padding zeros.
    fn byte_payload(&mut self, at: usize, ty: &AbiType) -> Result<Vec<u8>, DecodeError> {
        let len = self.usize_word(at, "num field")?;
        let padded = len.div_ceil(32) * 32;
        let start = at + 32;
        if start + padded > self.data.len() {
            return Err(DecodeError::OutOfBounds {
                at: start,
                context: "byte payload",
            });
        }
        let payload = self.data[start..start + len].to_vec();
        if self.data[start + len..start + padded]
            .iter()
            .any(|&b| b != 0)
        {
            return Err(DecodeError::BadRightPadding {
                ty: ty.canonical(),
                at: start + len,
            });
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn ty(s: &str) -> AbiType {
        AbiType::parse(s).unwrap()
    }

    fn u(v: u64) -> AbiValue {
        AbiValue::Uint(U256::from(v))
    }

    fn round_trip(types: &[AbiType], values: &[AbiValue]) {
        let data = encode(types, values).unwrap();
        let back = decode(types, &data).unwrap();
        assert_eq!(back, values, "round trip failed for {:?}", types);
    }

    #[test]
    fn round_trips_all_categories() {
        round_trip(&[ty("uint8")], &[u(200)]);
        round_trip(&[ty("int16")], &[AbiValue::Int(U256::from(-1234i64))]);
        round_trip(
            &[ty("address")],
            &[AbiValue::Address(U256::from(0xabcdefu64))],
        );
        round_trip(&[ty("bool")], &[AbiValue::Bool(true)]);
        round_trip(&[ty("bytes4")], &[AbiValue::FixedBytes(b"abcd".to_vec())]);
        round_trip(&[ty("bytes")], &[AbiValue::Bytes(vec![1, 2, 3, 4, 5])]);
        round_trip(&[ty("string")], &[AbiValue::Str("hello world".into())]);
        round_trip(
            &[ty("uint256[3]")],
            &[AbiValue::Array(vec![u(1), u(2), u(3)])],
        );
        round_trip(&[ty("uint8[]")], &[AbiValue::Array(vec![u(9), u(8)])]);
        round_trip(
            &[ty("uint256[][]")],
            &[AbiValue::Array(vec![
                AbiValue::Array(vec![u(1), u(2)]),
                AbiValue::Array(vec![u(3)]),
            ])],
        );
        round_trip(
            &[ty("(uint256[],uint256)")],
            &[AbiValue::Tuple(vec![
                AbiValue::Array(vec![u(1), u(2)]),
                u(3),
            ])],
        );
        round_trip(
            &[ty("uint8"), ty("bytes"), ty("bool")],
            &[u(5), AbiValue::Bytes(vec![0xff; 40]), AbiValue::Bool(false)],
        );
    }

    #[test]
    fn rejects_bad_left_padding() {
        // uint8 word with a dirty high byte.
        let mut data = encode(&[ty("uint8")], &[u(5)]).unwrap();
        data[0] = 0x01;
        assert!(matches!(
            decode(&[ty("uint8")], &data),
            Err(DecodeError::BadLeftPadding { .. })
        ));
        // address word with dirt in the upper 12 bytes.
        let mut data = encode(&[ty("address")], &[AbiValue::Address(U256::ONE)]).unwrap();
        data[11] = 0x80;
        assert!(matches!(
            decode(&[ty("address")], &data),
            Err(DecodeError::BadLeftPadding { .. })
        ));
    }

    #[test]
    fn rejects_bad_right_padding() {
        let mut data = encode(&[ty("bytes4")], &[AbiValue::FixedBytes(b"abcd".to_vec())]).unwrap();
        data[31] = 0x01;
        assert!(matches!(
            decode(&[ty("bytes4")], &data),
            Err(DecodeError::BadRightPadding { .. })
        ));
        let mut data = encode(&[ty("bytes")], &[AbiValue::Bytes(b"ab".to_vec())]).unwrap();
        *data.last_mut().unwrap() = 0x01;
        assert!(matches!(
            decode(&[ty("bytes")], &data),
            Err(DecodeError::BadRightPadding { .. })
        ));
    }

    #[test]
    fn rejects_bad_bool_and_sign() {
        let mut data = encode(&[ty("bool")], &[AbiValue::Bool(true)]).unwrap();
        data[31] = 0x02;
        assert!(matches!(
            decode(&[ty("bool")], &data),
            Err(DecodeError::BadBool { .. })
        ));
        let mut data = encode(&[ty("int8")], &[AbiValue::Int(U256::from(-5i64))]).unwrap();
        data[0] = 0x00; // break the sign extension
        assert!(matches!(
            decode(&[ty("int8")], &data),
            Err(DecodeError::BadSignExtension { .. })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let data = encode(
            &[ty("address"), ty("uint256")],
            &[AbiValue::Address(U256::ONE), u(10000)],
        )
        .unwrap();
        // The short-address attack ships 63 bytes instead of 64.
        let err = decode(&[ty("address"), ty("uint256")], &data[..63]).unwrap_err();
        assert!(err.is_truncation());
    }

    #[test]
    fn rejects_wild_offset() {
        let mut data = encode(&[ty("bytes")], &[AbiValue::Bytes(vec![1])]).unwrap();
        data[0..32].copy_from_slice(&U256::MAX.to_be_bytes());
        assert!(decode(&[ty("bytes")], &data).is_err());
    }

    #[test]
    fn rejects_oversized_num() {
        let mut data = encode(&[ty("uint8[]")], &[AbiValue::Array(vec![u(1)])]).unwrap();
        // num claims 2^200 items.
        let huge = U256::ONE << 200u32;
        data[32..64].copy_from_slice(&huge.to_be_bytes());
        assert!(decode(&[ty("uint8[]")], &data).is_err());
    }

    #[test]
    fn decode_call_splits_selector() {
        let types = [ty("uint256")];
        let mut calldata = vec![0xa9, 0x05, 0x9c, 0xbb];
        calldata.extend(encode(&types, &[u(7)]).unwrap());
        let (sel, vals) = decode_call(&types, &calldata).unwrap();
        assert_eq!(sel, [0xa9, 0x05, 0x9c, 0xbb]);
        assert_eq!(vals, vec![u(7)]);
        assert!(decode_call(&types, &[0x01, 0x02]).is_err());
    }

    #[test]
    fn extra_trailing_bytes_tolerated() {
        // The ABI permits callers to append garbage past the encoded args;
        // the decoder reads only what the types require.
        let mut data = encode(&[ty("uint256")], &[u(1)]).unwrap();
        data.extend_from_slice(&[0xde, 0xad]);
        assert!(decode(&[ty("uint256")], &data).is_ok());
    }
}
