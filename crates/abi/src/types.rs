//! The Solidity ABI type grammar.
//!
//! [`AbiType`] models every parameter type SigRec recovers (§2.3.1 of the
//! paper): the five basic types, static/dynamic/nested arrays, `bytes`,
//! `string`, and structs (tuples). Vyper's surface types live in
//! [`crate::vyper::VyperType`] and lower onto this grammar.

use std::fmt;

/// A Solidity ABI parameter type.
///
/// Array composition covers all three paper categories:
/// - *static array* `T[N]` = `Array(T, N)` where every element type is static;
/// - *dynamic array* `T[X1]..[Xn-1][]` = `DynArray(Array(..))` — only the
///   outermost dimension dynamic;
/// - *nested array* = any composition with an inner `DynArray`.
///
/// # Examples
///
/// ```
/// use sigrec_abi::AbiType;
///
/// let t = AbiType::DynArray(Box::new(AbiType::Array(Box::new(AbiType::Uint(256)), 3)));
/// assert_eq!(t.canonical(), "uint256[3][]");
/// assert!(t.is_dynamic());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum AbiType {
    /// `uintM`, `8 <= M <= 256`, `M % 8 == 0`.
    Uint(u16),
    /// `intM`, `8 <= M <= 256`, `M % 8 == 0`.
    Int(u16),
    /// 20-byte account address.
    Address,
    /// Boolean, encoded as a full word holding 0 or 1.
    Bool,
    /// `bytesM`, `1 <= M <= 32`: fixed-size byte sequence, right-padded.
    FixedBytes(u8),
    /// `bytes`: dynamic byte sequence.
    Bytes,
    /// `string`: dynamic UTF-8 string.
    String,
    /// `T[N]`: fixed-count array.
    Array(Box<AbiType>, usize),
    /// `T[]`: dynamic-count array.
    DynArray(Box<AbiType>),
    /// Struct / tuple `(T1, ..., Tn)` (ABIEncoderV2).
    Tuple(Vec<AbiType>),
}

impl AbiType {
    /// Validates the width constraints of the grammar (`uintM`/`intM` widths,
    /// `bytesM` sizes, non-empty static arrays and tuples), recursively.
    pub fn is_well_formed(&self) -> bool {
        match self {
            AbiType::Uint(m) | AbiType::Int(m) => *m >= 8 && *m <= 256 && m % 8 == 0,
            AbiType::Address | AbiType::Bool | AbiType::Bytes | AbiType::String => true,
            AbiType::FixedBytes(m) => (1..=32).contains(m),
            AbiType::Array(t, n) => *n >= 1 && t.is_well_formed(),
            AbiType::DynArray(t) => t.is_well_formed(),
            AbiType::Tuple(ts) => !ts.is_empty() && ts.iter().all(AbiType::is_well_formed),
        }
    }

    /// True if the encoding of this type has variable length (`bytes`,
    /// `string`, dynamic arrays, or any composite containing one).
    pub fn is_dynamic(&self) -> bool {
        match self {
            AbiType::Bytes | AbiType::String | AbiType::DynArray(_) => true,
            AbiType::Array(t, _) => t.is_dynamic(),
            AbiType::Tuple(ts) => ts.iter().any(AbiType::is_dynamic),
            _ => false,
        }
    }

    /// Size in bytes of this type's *head* in the ABI encoding: 32 for any
    /// dynamic type (the offset word), the full inline size otherwise.
    pub fn head_size(&self) -> usize {
        if self.is_dynamic() {
            return 32;
        }
        match self {
            AbiType::Array(t, n) => t.head_size() * n,
            AbiType::Tuple(ts) => ts.iter().map(AbiType::head_size).sum(),
            _ => 32,
        }
    }

    /// True for the paper's "basic types" (§2.3.1 category 1): value types
    /// occupying exactly one calldata word.
    pub fn is_basic(&self) -> bool {
        matches!(
            self,
            AbiType::Uint(_)
                | AbiType::Int(_)
                | AbiType::Address
                | AbiType::Bool
                | AbiType::FixedBytes(_)
        )
    }

    /// The element type of an array, or `None`.
    pub fn element(&self) -> Option<&AbiType> {
        match self {
            AbiType::Array(t, _) | AbiType::DynArray(t) => Some(t),
            _ => None,
        }
    }

    /// The innermost non-array type of an (arbitrarily nested) array, or
    /// `self` for non-arrays.
    pub fn base_type(&self) -> &AbiType {
        match self {
            AbiType::Array(t, _) | AbiType::DynArray(t) => t.base_type(),
            _ => self,
        }
    }

    /// Array nesting depth (0 for non-arrays).
    pub fn dimensions(&self) -> usize {
        match self {
            AbiType::Array(t, _) | AbiType::DynArray(t) => 1 + t.dimensions(),
            _ => 0,
        }
    }

    /// Paper classification: a *static array* has every dimension fixed.
    pub fn is_static_array(&self) -> bool {
        matches!(self, AbiType::Array(..)) && !self.is_dynamic()
    }

    /// Paper classification: a *dynamic array* `T[X1]..[Xn-1][]` — the
    /// outermost dimension dynamic, all inner dimensions static.
    pub fn is_dynamic_array(&self) -> bool {
        match self {
            AbiType::DynArray(t) => match &**t {
                inner @ AbiType::Array(..) => !inner.is_dynamic(),
                inner => !inner.is_dynamic() && inner.dimensions() == 0,
            },
            _ => false,
        }
    }

    /// Paper classification: a *nested array* — an array with at least one
    /// dynamic dimension strictly inside another dimension.
    pub fn is_nested_array(&self) -> bool {
        fn contains_dyn_dim(t: &AbiType) -> bool {
            match t {
                AbiType::DynArray(_) => true,
                AbiType::Array(inner, _) => contains_dyn_dim(inner),
                _ => false,
            }
        }
        match self {
            AbiType::Array(inner, _) => contains_dyn_dim(inner),
            AbiType::DynArray(inner) => contains_dyn_dim(inner),
            _ => false,
        }
    }

    /// The canonical ABI spelling used for selector hashing, e.g.
    /// `uint256`, `uint8[3][]`, `(uint256,bytes)`.
    pub fn canonical(&self) -> String {
        match self {
            AbiType::Uint(m) => format!("uint{}", m),
            AbiType::Int(m) => format!("int{}", m),
            AbiType::Address => "address".into(),
            AbiType::Bool => "bool".into(),
            AbiType::FixedBytes(m) => format!("bytes{}", m),
            AbiType::Bytes => "bytes".into(),
            AbiType::String => "string".into(),
            AbiType::Array(t, n) => format!("{}[{}]", t.canonical(), n),
            AbiType::DynArray(t) => format!("{}[]", t.canonical()),
            AbiType::Tuple(ts) => {
                let inner: Vec<String> = ts.iter().map(AbiType::canonical).collect();
                format!("({})", inner.join(","))
            }
        }
    }

    /// Parses a canonical type spelling. Accepts the shorthand `uint`/`int`
    /// (= 256 bits) the way Solidity sources do, but [`Self::canonical`]
    /// always renders the explicit width.
    pub fn parse(s: &str) -> Result<AbiType, TypeParseError> {
        let mut p = Parser {
            input: s.as_bytes(),
            pos: 0,
        };
        let t = p.parse_type()?;
        if p.pos != s.len() {
            return Err(TypeParseError::new(s, "trailing characters"));
        }
        if !t.is_well_formed() {
            return Err(TypeParseError::new(s, "width constraint violated"));
        }
        Ok(t)
    }
}

impl fmt::Display for AbiType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

impl std::str::FromStr for AbiType {
    type Err = TypeParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AbiType::parse(s)
    }
}

/// Error from [`AbiType::parse`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeParseError {
    input: String,
    reason: &'static str,
}

impl TypeParseError {
    pub(crate) fn new(input: &str, reason: &'static str) -> Self {
        TypeParseError {
            input: input.to_string(),
            reason,
        }
    }
}

impl fmt::Display for TypeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ABI type {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for TypeParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_type(&mut self) -> Result<AbiType, TypeParseError> {
        let base = if self.peek() == Some(b'(') {
            self.parse_tuple()?
        } else {
            self.parse_elementary()?
        };
        self.parse_array_suffixes(base)
    }

    fn parse_tuple(&mut self) -> Result<AbiType, TypeParseError> {
        self.expect(b'(')?;
        let mut items = Vec::new();
        loop {
            items.push(self.parse_type()?);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b')') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or ')'")),
            }
        }
        Ok(AbiType::Tuple(items))
    }

    fn parse_elementary(&mut self) -> Result<AbiType, TypeParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_lowercase()) {
            self.pos += 1;
        }
        let word = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
        let digits = self.take_digits();
        match (word, digits) {
            ("uint", None) => Ok(AbiType::Uint(256)),
            ("uint", Some(m)) => Ok(AbiType::Uint(m as u16)),
            ("int", None) => Ok(AbiType::Int(256)),
            ("int", Some(m)) => Ok(AbiType::Int(m as u16)),
            ("address", None) => Ok(AbiType::Address),
            ("bool", None) => Ok(AbiType::Bool),
            ("bytes", None) => Ok(AbiType::Bytes),
            ("bytes", Some(m)) if m <= 32 => Ok(AbiType::FixedBytes(m as u8)),
            ("string", None) => Ok(AbiType::String),
            _ => Err(self.err("unknown elementary type")),
        }
    }

    fn parse_array_suffixes(&mut self, mut t: AbiType) -> Result<AbiType, TypeParseError> {
        while self.peek() == Some(b'[') {
            self.pos += 1;
            if self.peek() == Some(b']') {
                self.pos += 1;
                t = AbiType::DynArray(Box::new(t));
            } else {
                let n = self
                    .take_digits()
                    .ok_or_else(|| self.err("expected array size"))?;
                self.expect(b']')?;
                t = AbiType::Array(Box::new(t), n as usize);
            }
        }
        Ok(t)
    }

    fn take_digits(&mut self) -> Option<u64> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .unwrap()
            .parse()
            .ok()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), TypeParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn err(&self, reason: &'static str) -> TypeParseError {
        TypeParseError::new(
            std::str::from_utf8(self.input).unwrap_or("<non-utf8>"),
            reason,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> AbiType {
        AbiType::parse(s).unwrap()
    }

    #[test]
    fn canonical_round_trip() {
        for s in [
            "uint256",
            "uint8",
            "int128",
            "address",
            "bool",
            "bytes4",
            "bytes32",
            "bytes",
            "string",
            "uint256[3]",
            "uint256[3][2]",
            "uint8[]",
            "uint256[3][]",
            "uint8[][2]",
            "(uint256,uint256)",
            "(uint256[],uint256)",
            "(uint8,(bool,address))[2]",
        ] {
            assert_eq!(t(s).canonical(), s, "round trip failed for {}", s);
        }
    }

    #[test]
    fn shorthand_widths() {
        assert_eq!(t("uint"), AbiType::Uint(256));
        assert_eq!(t("int"), AbiType::Int(256));
        assert_eq!(t("uint[]").canonical(), "uint256[]");
    }

    #[test]
    fn rejects_bad_widths() {
        assert!(AbiType::parse("uint7").is_err());
        assert!(AbiType::parse("uint264").is_err());
        assert!(AbiType::parse("int0").is_err());
        assert!(AbiType::parse("bytes33").is_err());
        assert!(AbiType::parse("bytes0").is_err());
        assert!(AbiType::parse("uint256[0]").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(AbiType::parse("").is_err());
        assert!(AbiType::parse("uint256 ").is_err());
        assert!(AbiType::parse("float").is_err());
        assert!(AbiType::parse("uint256[").is_err());
        assert!(AbiType::parse("(uint256").is_err());
        assert!(AbiType::parse("()").is_err());
    }

    #[test]
    fn dynamic_classification() {
        assert!(!t("uint256").is_dynamic());
        assert!(t("bytes").is_dynamic());
        assert!(t("string").is_dynamic());
        assert!(t("uint8[]").is_dynamic());
        assert!(!t("uint8[4]").is_dynamic());
        assert!(t("uint8[][4]").is_dynamic());
        assert!(t("(uint256,bytes)").is_dynamic());
        assert!(!t("(uint256,bool)").is_dynamic());
    }

    #[test]
    fn paper_array_categories() {
        // §2.3.1: static, dynamic, nested.
        assert!(t("uint256[3][2]").is_static_array());
        assert!(!t("uint256[3][2]").is_nested_array());
        assert!(t("uint256[3][]").is_dynamic_array());
        assert!(!t("uint256[3][]").is_nested_array());
        // uint[][1]: inner dimension dynamic → nested.
        assert!(t("uint256[][1]").is_nested_array());
        assert!(!t("uint256[][1]").is_dynamic_array());
        // uint[][]: nested per the paper's definition.
        assert!(t("uint256[][]").is_nested_array());
        assert!(!t("uint256[][]").is_dynamic_array());
        assert!(!t("uint8").is_static_array());
    }

    #[test]
    fn head_sizes() {
        assert_eq!(t("uint8").head_size(), 32);
        assert_eq!(t("uint256[3]").head_size(), 96);
        assert_eq!(t("uint256[3][2]").head_size(), 192);
        assert_eq!(t("bytes").head_size(), 32);
        assert_eq!(t("uint8[]").head_size(), 32);
        assert_eq!(t("(uint256,uint256)").head_size(), 64);
        assert_eq!(t("(uint256,bytes)").head_size(), 32);
    }

    #[test]
    fn structure_accessors() {
        let a = t("uint8[3][]");
        assert_eq!(a.dimensions(), 2);
        assert_eq!(a.base_type(), &AbiType::Uint(8));
        assert_eq!(a.element().unwrap().canonical(), "uint8[3]");
        assert!(t("uint8").element().is_none());
    }
}
