//! Integration: the full pipeline (generate → compile → recover → score)
//! across both languages, all visibilities, and the paper's headline
//! accuracy claims at reduced scale.

use sigrec_abi::{AbiType, FunctionSignature, VyperType};
use sigrec_core::{Language, SigRec};
use sigrec_corpus::{datasets, evaluate};
use sigrec_solc::{compile, CompilerConfig, FunctionSpec, SolcVersion, Visibility};
use sigrec_vyperc::{compile as vyper_compile, VyperFunctionSpec, VyperVersion};

fn recover_decl(decl: &str, vis: Visibility, config: &CompilerConfig) -> String {
    let sig = FunctionSignature::parse(decl).unwrap();
    let contract = compile(&[FunctionSpec::new(sig, vis)], config);
    let rec = SigRec::new().recover(&contract.code);
    assert_eq!(rec.len(), 1, "{decl}");
    rec[0].signature().param_list()
}

/// Every §2.3.1 Solidity category, all four (visibility × dispatch-era)
/// combinations.
#[test]
fn solidity_type_matrix() {
    let configs = [
        CompilerConfig::new(SolcVersion::V0_8_0, false),
        CompilerConfig::new(SolcVersion::V0_8_0, true),
        CompilerConfig::new(SolcVersion::V0_4_24, false),
        CompilerConfig::new(SolcVersion::V0_5_5, true),
    ];
    let decls = [
        "f(uint8)",
        "f(uint256)",
        "f(int48)",
        "f(int256)",
        "f(address)",
        "f(uint160)",
        "f(bool)",
        "f(bytes1)",
        "f(bytes16)",
        "f(bytes32)",
        "f(bytes)",
        "f(string)",
        "f(uint256[1])",
        "f(uint256[7])",
        "f(uint8[3][2])",
        "f(int16[2][3][2])",
        "f(uint64[])",
        "f(address[])",
        "f(bool[4][])",
        "f(uint256[][])",
        "f(uint8[][3])",
        "f((uint256[],uint256))",
        "f((bytes,bool,address))",
        "f(address,uint256)",
        "f(uint8,bytes,bool,string)",
        "f(uint256[3],uint8[],bytes4)",
    ];
    for config in &configs {
        for decl in &decls {
            for vis in [Visibility::Public, Visibility::External] {
                let got = recover_decl(decl, vis, config);
                let want = &decl[1..]; // strip the leading 'f'
                assert_eq!(got, *want, "decl {decl} vis {vis} config {config:?}");
            }
        }
    }
}

/// All ten Vyper types, both version eras.
#[test]
fn vyper_type_matrix() {
    use VyperType as V;
    let cases: Vec<(Vec<V>, &str)> = vec![
        (vec![V::Bool], "(bool)"),
        (vec![V::Int128], "(int128)"),
        (vec![V::Uint256], "(uint256)"),
        (vec![V::Address], "(address)"),
        (vec![V::Bytes32], "(bytes32)"),
        (vec![V::Decimal], "(int168)"),
        (vec![V::FixedList(Box::new(V::Decimal), 4)], "(int168[4])"),
        (
            vec![V::FixedList(
                Box::new(V::FixedList(Box::new(V::Uint256), 2)),
                3,
            )],
            "(uint256[2][3])",
        ),
        (vec![V::FixedBytes(40)], "(bytes)"),
        (vec![V::FixedString(12)], "(string)"),
        (
            vec![V::Struct(vec![V::Uint256, V::Address])],
            "(uint256,address)",
        ),
        (
            vec![V::Address, V::Bool, V::Int128],
            "(address,bool,int128)",
        ),
    ];
    for version in [
        VyperVersion::V0_2_8,
        VyperVersion {
            minor: 1,
            patch: 0,
            beta: 4,
        },
    ] {
        for (params, want) in &cases {
            let f = VyperFunctionSpec::new("f", params.clone());
            let c = vyper_compile(&[f], version);
            let rec = SigRec::new().recover(&c.code);
            assert_eq!(rec.len(), 1);
            assert_eq!(&rec[0].signature().param_list(), want, "version {version}");
        }
    }
}

/// Vyper-specific basic types must also set the language flag.
#[test]
fn vyper_language_detected() {
    let f = VyperFunctionSpec::new("f", vec![VyperType::Decimal]);
    let c = vyper_compile(&[f], VyperVersion::V0_2_8);
    let rec = SigRec::new().recover(&c.code);
    assert_eq!(rec[0].language, Language::Vyper);

    // Solidity stays Solidity.
    let sig = FunctionSignature::parse("f(uint8)").unwrap();
    let contract = compile(
        &[FunctionSpec::new(sig, Visibility::External)],
        &CompilerConfig::default(),
    );
    let rec = SigRec::new().recover(&contract.code);
    assert_eq!(rec[0].language, Language::Solidity);
}

/// RQ1 at reduced scale: accuracy must stay in the paper's neighbourhood
/// and the sound-recovery score must be (near-)perfect — errors come from
/// the injected source-level quirks, not tool defects.
#[test]
fn rq1_thresholds() {
    let sigrec = SigRec::new();
    let sol = evaluate(&sigrec, &datasets::dataset3(250, 1234));
    assert!(
        sol.accuracy() > 0.96,
        "Solidity accuracy {}",
        sol.accuracy()
    );
    assert!(
        sol.soundness_accuracy() > 0.995,
        "soundness {} — tool defects beyond inherent ambiguity",
        sol.soundness_accuracy()
    );
    let vy = evaluate(&sigrec, &datasets::vyper_corpus(60, 77));
    assert!(vy.accuracy() > 0.9, "Vyper accuracy {}", vy.accuracy());
}

/// Dataset 2's shape (98.8 % in the paper; clean synthesized functions).
#[test]
fn dataset2_threshold() {
    let e = evaluate(&SigRec::new(), &datasets::dataset2(4242));
    assert_eq!(e.total(), 1000);
    assert!(e.accuracy() > 0.97, "accuracy {}", e.accuracy());
    assert!(
        e.accuracy() < 1.0,
        "case-5 errors must exist: {}",
        e.accuracy()
    );
}

/// Version sweeps: no version dips below the paper's floor (96 %) for
/// Solidity; Vyper dips only on the tiny-sample versions.
#[test]
fn version_sweep_floors() {
    let sigrec = SigRec::new();
    for (version, optimize, corpus) in datasets::solidity_version_sweep(14, 5) {
        let e = evaluate(&sigrec, &corpus);
        assert!(
            e.accuracy() >= 0.9,
            "solc {version} optimize={optimize} accuracy {}",
            e.accuracy()
        );
        assert!(
            e.soundness_accuracy() >= 0.995,
            "solc {version} optimize={optimize} soundness {} — defects beyond inherent ambiguity",
            e.soundness_accuracy()
        );
    }
    for (version, corpus) in datasets::vyper_version_sweep(14, 5) {
        let e = evaluate(&sigrec, &corpus);
        if corpus.contracts.len() > 2 {
            assert!(
                e.accuracy() > 0.9,
                "vyper {version} accuracy {}",
                e.accuracy()
            );
        }
    }
}

/// The Table 4 subset: dynamic structs and nested arrays recover; static
/// structs flatten (the paper's stated limitation) — accuracy lands near
/// the paper's 61.3 %.
#[test]
fn struct_nested_accuracy_band() {
    let corpus = datasets::struct_nested_corpus(200, 0.387, 31);
    let e = evaluate(&SigRec::new(), &corpus);
    assert!(
        e.accuracy() > 0.45 && e.accuracy() < 0.8,
        "struct/nested accuracy {} outside the paper band",
        e.accuracy()
    );
}

/// Deep nesting and many parameters still terminate and recover.
#[test]
fn stress_shapes() {
    let mut ty = AbiType::Uint(256);
    for _ in 0..6 {
        ty = AbiType::DynArray(Box::new(ty));
    }
    let sig = FunctionSignature::from_declaration("deep", vec![ty]);
    let contract = compile(
        &[FunctionSpec::new(sig.clone(), Visibility::External)],
        &CompilerConfig::default(),
    );
    let rec = SigRec::new().recover(&contract.code);
    assert!(sig.matches(&rec[0].signature()));

    let many: Vec<AbiType> = (0..10).map(|_| AbiType::Uint(256)).collect();
    let sig = FunctionSignature::from_declaration("wide", many);
    let contract = compile(
        &[FunctionSpec::new(sig.clone(), Visibility::External)],
        &CompilerConfig::default(),
    );
    let rec = SigRec::new().recover(&contract.code);
    assert!(sig.matches(&rec[0].signature()));
}

/// A 30-function contract: every selector found, every signature right.
#[test]
fn large_dispatcher() {
    let specs: Vec<FunctionSpec> = (0..30)
        .map(|i| {
            let decl = format!("fn{}(uint{},bool)", i, 8 * (i % 32 + 1));
            FunctionSpec::new(
                FunctionSignature::parse(&decl).unwrap(),
                Visibility::External,
            )
        })
        .collect();
    let contract = compile(&specs, &CompilerConfig::default());
    let rec = SigRec::new().recover(&contract.code);
    assert_eq!(rec.len(), 30);
    for spec in &specs {
        let hit = rec
            .iter()
            .find(|r| r.selector == spec.signature.selector)
            .unwrap();
        assert!(
            spec.signature.matches(&hit.signature()),
            "{}",
            spec.signature.canonical()
        );
    }
}
