//! Property-based tests over the core substrates and the full pipeline.

use proptest::prelude::*;
use sigrec_abi::{decode, encode, AbiType, AbiValue, FunctionSignature};
use sigrec_core::SigRec;
use sigrec_evm::{keccak256, U256};
use sigrec_solc::{compile, CompilerConfig, FunctionSpec, Visibility};

fn u256() -> impl Strategy<Value = U256> {
    proptest::array::uniform4(any::<u64>()).prop_map(U256::from_limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- U256 ring and division laws -------------------------------

    #[test]
    fn add_commutes(a in u256(), b in u256()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn mul_commutes(a in u256(), b in u256()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn add_associates(a in u256(), b in u256(), c in u256()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_distributes(a in u256(), b in u256(), c in u256()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn sub_inverts_add(a in u256(), b in u256()) {
        prop_assert_eq!(a + b - b, a);
    }

    #[test]
    fn divmod_reconstructs(a in u256(), b in u256()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(b);
        prop_assert_eq!(q * b + r, a);
        prop_assert!(r < b);
    }

    #[test]
    fn signed_div_magnitude(a in u256(), b in u256()) {
        prop_assume!(!b.is_zero());
        // |a sdiv b| == |a| / |b| except the i256::MIN/-1 wrap.
        let min = U256::ONE << 255u32;
        prop_assume!(!(a == min && b == U256::MAX));
        let abs = |x: U256| if x.is_negative() { x.wrapping_neg() } else { x };
        prop_assert_eq!(abs(a.signed_div(b)), abs(a) / abs(b));
    }

    #[test]
    fn shifts_compose(a in u256(), s in 0u32..255) {
        prop_assert_eq!((a >> s) >> (255 - s).min(255), a >> 255u32);
        prop_assert_eq!(a << s >> s, a & U256::low_mask(256 - s));
    }

    #[test]
    fn be_bytes_round_trip(a in u256()) {
        prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn hex_round_trip(a in u256()) {
        let s = format!("{:x}", a);
        prop_assert_eq!(U256::from_hex(&s).unwrap(), a);
    }

    #[test]
    fn sign_extend_idempotent(a in u256(), b in 0u64..32) {
        let once = a.sign_extend(U256::from(b));
        prop_assert_eq!(once.sign_extend(U256::from(b)), once);
    }

    #[test]
    fn addmod_matches_wide(a in u256(), b in u256(), m in u256()) {
        prop_assume!(!m.is_zero());
        // (a+b) mod m computed via mulmod identity: addmod == (a%m + b%m) adjusted.
        let expect = {
            let (s, carry) = a.overflowing_add(b);
            if carry {
                // a+b = s + 2^256; reduce via mul_mod(2^128, 2^128) trick.
                let two128 = U256::ONE << 128u32;
                let wrap = two128.mul_mod(two128, m);
                (s % m).add_mod(wrap, m)
            } else {
                s % m
            }
        };
        prop_assert_eq!(a.add_mod(b, m), expect);
    }

    // ---- Keccak ------------------------------------------------------

    #[test]
    fn keccak_is_deterministic_and_sensitive(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let d1 = keccak256(&data);
        prop_assert_eq!(d1, keccak256(&data));
        let mut flipped = data.clone();
        if !flipped.is_empty() {
            flipped[0] ^= 1;
            prop_assert_ne!(d1, keccak256(&flipped));
        }
    }
}

// ---- ABI round trips over random type trees -------------------------

fn abi_type() -> impl Strategy<Value = AbiType> {
    let basic = prop_oneof![
        (1u16..=32).prop_map(|k| AbiType::Uint(8 * k)),
        (1u16..=32).prop_map(|k| AbiType::Int(8 * k)),
        Just(AbiType::Address),
        Just(AbiType::Bool),
        (1u8..=32).prop_map(AbiType::FixedBytes),
        Just(AbiType::Bytes),
        Just(AbiType::String),
    ];
    basic.prop_recursive(3, 12, 4, |inner| {
        prop_oneof![
            (inner.clone(), 1usize..4).prop_map(|(t, n)| AbiType::Array(Box::new(t), n)),
            inner.clone().prop_map(|t| AbiType::DynArray(Box::new(t))),
            proptest::collection::vec(inner, 1..3).prop_map(AbiType::Tuple),
        ]
    })
}

fn value_for(ty: &AbiType) -> AbiValue {
    // Deterministic non-zero witnesses per type.
    match ty {
        AbiType::Uint(m) => AbiValue::Uint(U256::low_mask((*m as u32).min(17))),
        AbiType::Int(m) => AbiValue::Int(U256::low_mask((*m as u32 - 1).min(13))),
        AbiType::Address => AbiValue::Address(U256::from(0xabcdefu64)),
        AbiType::Bool => AbiValue::Bool(true),
        AbiType::FixedBytes(m) => AbiValue::FixedBytes(vec![0x5a; *m as usize]),
        AbiType::Bytes => AbiValue::Bytes(vec![1, 2, 3, 4, 5]),
        AbiType::String => AbiValue::Str("prop".into()),
        AbiType::Array(el, n) => AbiValue::Array((0..*n).map(|_| value_for(el)).collect()),
        AbiType::DynArray(el) => AbiValue::Array(vec![value_for(el), value_for(el)]),
        AbiType::Tuple(ts) => AbiValue::Tuple(ts.iter().map(value_for).collect()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn abi_round_trip_random_types(ty in abi_type()) {
        let v = value_for(&ty);
        prop_assert!(v.conforms_to(&ty));
        let types = vec![ty];
        let values = vec![v];
        let data = encode(&types, &values).unwrap();
        prop_assert_eq!(decode(&types, &data).unwrap(), values);
    }

    #[test]
    fn type_parse_round_trip(ty in abi_type()) {
        let s = ty.canonical();
        prop_assert_eq!(AbiType::parse(&s).unwrap(), ty);
    }
}

// ---- full-pipeline property: compile → recover == declared ----------

/// Recovery-supported parameter types (no static tuples, which flatten by
/// design; element widths that survive refinement).
fn recoverable_param() -> impl Strategy<Value = AbiType> {
    let basic = prop_oneof![
        (1u16..=32).prop_map(|k| AbiType::Uint(8 * k)),
        (1u16..=32).prop_map(|k| AbiType::Int(8 * k)),
        Just(AbiType::Address),
        Just(AbiType::Bool),
        (1u8..=32).prop_map(AbiType::FixedBytes),
    ];
    prop_oneof![
        basic.clone(),
        Just(AbiType::Bytes),
        Just(AbiType::String),
        (basic.clone(), 1usize..5).prop_map(|(t, n)| AbiType::Array(Box::new(t), n)),
        basic.clone().prop_map(|t| AbiType::DynArray(Box::new(t))),
        (basic.clone(), 1usize..4)
            .prop_map(|(t, n)| AbiType::DynArray(Box::new(AbiType::Array(Box::new(t), n)))),
        basic.prop_map(|t| AbiType::DynArray(Box::new(AbiType::DynArray(Box::new(t))))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compile_then_recover_is_identity(
        params in proptest::collection::vec(recoverable_param(), 0..4),
        public in any::<bool>(),
    ) {
        let sig = FunctionSignature::from_declaration("prop", params);
        let vis = if public { Visibility::Public } else { Visibility::External };
        let contract = compile(
            &[FunctionSpec::new(sig.clone(), vis)],
            &CompilerConfig::default(),
        );
        let rec = SigRec::new().recover(&contract.code);
        prop_assert_eq!(rec.len(), 1);
        prop_assert!(
            sig.matches(&rec[0].signature()),
            "declared {} recovered {}",
            sig.canonical(),
            rec[0].signature().canonical()
        );
    }
}
