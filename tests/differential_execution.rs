//! Differential testing: the code generators, the ABI encoder, and the
//! concrete interpreter must agree — generated access code runs cleanly on
//! encoder output and rejects the decoder's reject set.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sigrec_abi::{decode, encode, encode_call, AbiType, AbiValue, FunctionSignature};
use sigrec_corpus::valuegen::{random_value, ValueLimits};
use sigrec_corpus::{datasets, typegen};
use sigrec_evm::{Env, Interpreter, Outcome};
use sigrec_solc::{compile, CompilerConfig, FunctionSpec, Visibility};

/// 150 random signatures: compile, encode random arguments, execute; the
/// run must complete without exceptional halt.
#[test]
fn generated_code_executes_on_encoded_args() {
    let mut rng = StdRng::seed_from_u64(2024);
    let limits = ValueLimits::default();
    for i in 0..150 {
        let params: Vec<AbiType> = (0..rng.gen_range(0..=4))
            .map(|_| typegen::realistic(&mut rng))
            .collect();
        let name = typegen::name(&mut rng, 6);
        let sig = FunctionSignature::from_declaration(&name, params);
        let vis = if rng.gen_bool(0.5) {
            Visibility::Public
        } else {
            Visibility::External
        };
        let contract = compile(
            &[FunctionSpec::new(sig.clone(), vis)],
            &CompilerConfig::default(),
        );
        let values: Vec<AbiValue> = sig
            .params
            .iter()
            .map(|t| random_value(&mut rng, t, &limits))
            .collect();
        let calldata = encode_call(&sig, &values).unwrap();
        let exec = Interpreter::new(&contract.code).run(&Env::with_calldata(calldata));
        assert_eq!(
            exec.outcome,
            Outcome::Stop,
            "case {i}: {} ({vis}) must run cleanly",
            sig.canonical()
        );
    }
}

/// Whatever the traffic generator labels valid must decode; whatever it
/// labels malformed must not — over a larger sample than the unit test.
#[test]
fn traffic_decoder_agreement() {
    use sigrec_corpus::{generate_traffic, TrafficLabel, TrafficParams};
    let corpus = datasets::dataset3(60, 3001);
    let txs = generate_traffic(
        &corpus,
        &TrafficParams {
            transactions: 1500,
            invalid_rate: 0.25,
            attacks: 25,
            seed: 9,
        },
    );
    let mut malformed = 0;
    for tx in &txs {
        let ok = decode(&tx.target.params, &tx.calldata[4..]).is_ok();
        match tx.label {
            TrafficLabel::Valid => assert!(ok, "{}", tx.target),
            _ => {
                malformed += 1;
                assert!(!ok, "{:?} {}", tx.label, tx.target);
            }
        }
    }
    assert!(
        malformed > 100,
        "the malformation paths must actually exercise"
    );
}

/// Encode → decode is the identity on random values across random types.
#[test]
fn encode_decode_identity_random() {
    let mut rng = StdRng::seed_from_u64(555);
    let limits = ValueLimits {
        max_array_items: 3,
        max_byte_len: 70,
    };
    for _ in 0..300 {
        let ty = typegen::realistic(&mut rng);
        let v = random_value(&mut rng, &ty, &limits);
        let types = vec![ty];
        let values = vec![v];
        let data = encode(&types, &values).unwrap();
        let back = decode(&types, &data).unwrap();
        assert_eq!(back, values, "{}", types[0]);
    }
}

/// Bound-checked access reverts when the symbolic index is out of range:
/// storage slot 0 (the index source) is 0, so an empty-array encoding must
/// revert at the bound check, not fault.
#[test]
fn out_of_bounds_index_reverts_not_faults() {
    let sig = FunctionSignature::parse("f(uint256[])").unwrap();
    let contract = compile(
        &[FunctionSpec::new(sig.clone(), Visibility::External)],
        &CompilerConfig::default(),
    );
    // Empty array: index 0 is out of bounds.
    let calldata = encode_call(&sig, &[AbiValue::Array(vec![])]).unwrap();
    let exec = Interpreter::new(&contract.code).run(&Env::with_calldata(calldata));
    assert!(
        matches!(exec.outcome, Outcome::Revert(_)),
        "{:?}",
        exec.outcome
    );
}

/// Garbage calldata may revert or stop, but must never fault the
/// interpreter with a stack error or run forever.
#[test]
fn garbage_calldata_never_faults() {
    use sigrec_evm::HaltReason;
    let mut rng = StdRng::seed_from_u64(808);
    let corpus = datasets::dataset3(25, 4001);
    for contract in &corpus.contracts {
        for f in &contract.functions {
            let mut cd = f.declared.selector.0.to_vec();
            let len = rng.gen_range(0..200usize);
            cd.extend((0..len).map(|_| rng.gen::<u8>()));
            let exec = Interpreter::new(&contract.code)
                .with_step_limit(200_000)
                .run(&Env::with_calldata(cd));
            match exec.outcome {
                Outcome::InvalidHalt(HaltReason::StackUnderflow)
                | Outcome::InvalidHalt(HaltReason::StackOverflow) => {
                    panic!("stack fault in {}", f.declared.canonical())
                }
                // OutOfSteps is legitimate: garbage num fields can demand
                // gigantic copy loops; the real chain throttles them with
                // gas, our interpreter with the step budget.
                _ => {}
            }
        }
    }
}
