//! Integration: the three §6 applications driven end-to-end through
//! recovered (not ground-truth) signatures.

use sigrec_core::SigRec;
use sigrec_corpus::{datasets, generate_traffic, TrafficLabel, TrafficParams};
use sigrec_erays::{enhance, lift, ReadabilityDelta};
use sigrec_fuzz::{run_campaign, target::generate_targets, Campaign, InputStrategy};
use sigrec_parchecker::ParChecker;

/// §6.1 — all injected attacks found, validation errors bounded by the
/// injection rate plus recovery ambiguity.
#[test]
fn parchecker_end_to_end() {
    let corpus = datasets::dataset3(80, 61);
    let checker = ParChecker::from_bytecode(corpus.contracts.iter().map(|c| c.code.as_slice()));
    assert!(checker.signature_count() > 100);
    let txs = generate_traffic(
        &corpus,
        &TrafficParams {
            transactions: 1200,
            invalid_rate: 0.02,
            attacks: 6,
            seed: 2,
        },
    );
    let report = checker.sweep(txs.iter().map(|t| t.calldata.as_slice()));
    let injected_attacks = txs
        .iter()
        .filter(|t| t.label == TrafficLabel::ShortAddressAttack)
        .count();
    assert_eq!(
        report.short_address_attacks, injected_attacks,
        "all attacks detected"
    );
    assert_eq!(report.unknown, 0, "recovery must cover every target");
    let truly_invalid = txs
        .iter()
        .filter(|t| !matches!(t.label, TrafficLabel::Valid))
        .count();
    assert!(
        report.invalid >= truly_invalid,
        "no malformed payload may validate"
    );
    // False positives only from recovery-vs-declaration quirks: a few percent.
    assert!(
        report.invalid <= truly_invalid + txs.len() / 20,
        "too many false positives: {} flagged vs {} true",
        report.invalid,
        truly_invalid
    );
}

/// §6.2 — the type-aware fuzzer strictly dominates random input on the
/// same corpus and budget.
#[test]
fn fuzzing_end_to_end() {
    let targets = generate_targets(60, 0.6, 17);
    let campaign = Campaign {
        budget_per_function: 32,
        seed: 4,
    };
    let typed = run_campaign(&targets, InputStrategy::TypeAware, &campaign);
    let random = run_campaign(&targets, InputStrategy::Random, &campaign);
    assert!(typed.bugs_seeded > 20);
    assert_eq!(
        typed.bugs_found, typed.bugs_seeded,
        "typed fuzzing reaches every bug"
    );
    assert!(
        random.bugs_found < typed.bugs_found,
        "the signature gap must exist"
    );
    assert!(random.bugs_found > 0, "random still finds basic-only bugs");
    assert!(
        typed.executions < random.executions,
        "typed needs far fewer runs"
    );
}

/// §6.3 — Erays+ improves every parameterised contract and the metrics
/// stay internally consistent.
#[test]
fn erays_end_to_end() {
    let corpus = datasets::dataset3(50, 23);
    let sigrec = SigRec::new();
    let mut processed = 0;
    for contract in &corpus.contracts {
        let recovered = sigrec.recover(&contract.code);
        if recovered.iter().all(|r| r.params.is_empty()) {
            continue;
        }
        processed += 1;
        let entries: Vec<usize> = recovered.iter().map(|r| r.entry).collect();
        let program = lift(&contract.code, &entries);
        let enhanced = enhance(&program, &recovered);
        assert_eq!(enhanced.len(), program.functions.len());
        let mut delta = ReadabilityDelta::default();
        for e in &enhanced {
            delta.absorb(&e.delta);
            // The header must carry every recovered type.
            let rec = recovered.iter().find(|r| {
                e.header
                    .contains(&format!("func_{:08x}", r.selector.as_u32()))
            });
            assert!(
                rec.is_some(),
                "header {} must name a recovered fn",
                e.header
            );
        }
        assert!(delta.improved(), "contract must improve");
        // Types added equals the total parameter count.
        let params: usize = recovered.iter().map(|r| r.params.len()).sum();
        assert_eq!(delta.added_types, params);
    }
    assert!(
        processed > 30,
        "most contracts have parameterised functions"
    );
}

/// The baselines keep their documented shapes on a fresh corpus.
#[test]
fn baseline_shapes_hold() {
    use sigrec_efsd::{run_tool, DbTool, Efsd, EveemTool, GigahorseTool, SigRecTool};
    let corpus = datasets::dataset3(60, 31);
    let db = Efsd::seeded_from(&corpus, 0.51, 3);
    let sigrec = run_tool(&SigRecTool::new(), &corpus, None);
    let eveem = run_tool(&EveemTool::new(db.clone()), &corpus, None);
    let giga = run_tool(&GigahorseTool::new(db.clone()), &corpus, None);
    let osd = run_tool(&DbTool::new("OSD", db, 1.0), &corpus, None);
    assert!(sigrec.accuracy() > 0.95);
    assert!(
        sigrec.accuracy() > eveem.accuracy() + 0.2,
        "paper: gap ≥ 22.5%"
    );
    assert!(
        eveem.accuracy() > osd.accuracy(),
        "paper: Eveem beats OSD via heuristics"
    );
    assert!(giga.abort_ratio() > 0.0, "Gigahorse aborts sometimes");
    assert_eq!(osd.wrong_types, 0, "a db tool is right or silent");
}
