//! Quickstart: compile a contract with the bundled Solidity-pattern
//! back-end, then recover its function signatures from bytecode alone.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sigrec_abi::FunctionSignature;
use sigrec_core::SigRec;
use sigrec_solc::{compile, CompilerConfig, FunctionSpec, Visibility};

fn main() {
    // An ERC-20-flavoured contract. In real use the bytecode would come
    // from the chain; here the bundled code generator stands in for solc.
    let declarations = [
        ("transfer(address,uint256)", Visibility::External),
        ("approve(address,uint256)", Visibility::External),
        (
            "transferFrom(address,address,uint256)",
            Visibility::External,
        ),
        ("batchTransfer(address[],uint256)", Visibility::Public),
        ("setMetadata(string,bytes32)", Visibility::Public),
    ];
    let specs: Vec<FunctionSpec> = declarations
        .iter()
        .map(|(decl, vis)| FunctionSpec::new(FunctionSignature::parse(decl).unwrap(), *vis))
        .collect();
    let contract = compile(&specs, &CompilerConfig::default());
    println!(
        "compiled {} bytes of runtime bytecode\n",
        contract.code.len()
    );

    // --- the actual SigRec usage: bytecode in, signatures out ---
    let recovered = SigRec::new().recover(&contract.code);

    println!("{:<12} {:<44} time", "selector", "recovered signature");
    println!("{}", "-".repeat(70));
    for f in &recovered {
        println!(
            "{:<12} {:<44} {:?}",
            f.selector.to_string(),
            f.signature().canonical(),
            f.elapsed
        );
    }

    // Verify against the declarations we started from.
    let mut correct = 0;
    for spec in &specs {
        let hit = recovered
            .iter()
            .find(|r| r.selector == spec.signature.selector);
        if let Some(r) = hit {
            if spec.signature.matches(&r.signature()) {
                correct += 1;
                continue;
            }
        }
        println!("MISMATCH for {}", spec.signature.canonical());
    }
    println!("\n{}/{} signatures recovered exactly", correct, specs.len());
    assert_eq!(correct, specs.len());
}
