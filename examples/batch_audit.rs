//! Batch recovery: fan a corpus of contracts across worker threads and
//! aggregate accuracy, timing, and rule-usage statistics — a miniature of
//! the paper's 47M-function sweep.
//!
//! ```sh
//! cargo run --release --example batch_audit
//! ```

use sigrec_core::{recover_batch, SigRec};
use sigrec_corpus::datasets;
use std::time::Instant;

fn main() {
    let corpus = datasets::dataset3(500, 99);
    let codes: Vec<Vec<u8>> = corpus.contracts.iter().map(|c| c.code.clone()).collect();
    println!(
        "corpus: {} contracts / {} functions",
        corpus.contracts.len(),
        corpus.function_count()
    );

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let start = Instant::now();
    let batch = recover_batch(&SigRec::new(), &codes, workers);
    let elapsed = start.elapsed();

    println!(
        "recovered {} functions on {} workers in {:?} ({:.0} functions/s)\n",
        batch.function_count(),
        workers,
        elapsed,
        batch.function_count() as f64 / elapsed.as_secs_f64()
    );

    // Accuracy against ground truth.
    let mut correct = 0usize;
    let mut total = 0usize;
    for (item, contract) in batch.items.iter().zip(&corpus.contracts) {
        for truth in &contract.functions {
            total += 1;
            if let Some(r) = item
                .functions
                .iter()
                .find(|r| r.selector == truth.declared.selector)
            {
                if r.params == truth.declared.params {
                    correct += 1;
                }
            }
        }
    }
    println!(
        "accuracy: {}/{} = {:.2}%",
        correct,
        total,
        100.0 * correct as f64 / total as f64
    );

    // Rule usage, Fig. 19 style.
    println!("\nrule usage (top 8):");
    let mut rules: Vec<_> = batch.rule_stats.iter().collect();
    rules.sort_by_key(|(_, count)| std::cmp::Reverse(*count));
    for (rule, count) in rules.into_iter().take(8) {
        println!("  {:<4} {:>8}", rule.to_string(), count);
    }
}
