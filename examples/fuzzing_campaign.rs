//! Fuzzing with recovered signatures (§6.2): run the same budget with and
//! without type information and compare bug discovery.
//!
//! ```sh
//! cargo run --release --example fuzzing_campaign
//! ```

use sigrec_fuzz::{run_campaign, target::generate_targets, Campaign, InputStrategy};

fn main() {
    let targets = generate_targets(150, 0.5, 42);
    let total_functions: usize = targets.iter().map(|t| t.functions.len()).sum();
    println!(
        "targets: {} contracts / {} functions (≈50% carry a seeded bug)\n",
        targets.len(),
        total_functions
    );

    let campaign = Campaign {
        budget_per_function: 48,
        seed: 1,
    };
    let typed = run_campaign(&targets, InputStrategy::TypeAware, &campaign);
    let random = run_campaign(&targets, InputStrategy::Random, &campaign);

    println!(
        "{:<28} {:>10} {:>22} {:>12}",
        "fuzzer", "bugs", "vulnerable contracts", "executions"
    );
    println!("{}", "-".repeat(76));
    println!(
        "{:<28} {:>10} {:>22} {:>12}",
        "ContractFuzzer + SigRec", typed.bugs_found, typed.vulnerable_contracts, typed.executions
    );
    println!(
        "{:<28} {:>10} {:>22} {:>12}",
        "ContractFuzzer- (random)",
        random.bugs_found,
        random.vulnerable_contracts,
        random.executions
    );

    let gain = typed.bugs_found as f64 / random.bugs_found.max(1) as f64 - 1.0;
    println!(
        "\nwith recovered signatures: {:+.0}% bugs ({} of {} seeded vs {})",
        100.0 * gain,
        typed.bugs_found,
        typed.bugs_seeded,
        random.bugs_found
    );
    assert!(
        typed.bugs_found > random.bugs_found,
        "type-aware fuzzing must find strictly more bugs"
    );
}
