//! Reverse engineering (§6.3): lift bytecode to a register IR (Erays) and
//! enhance it with recovered signatures (Erays+), printing both renderings
//! side by side.
//!
//! ```sh
//! cargo run --example reverse_engineering
//! ```

use sigrec_abi::FunctionSignature;
use sigrec_core::SigRec;
use sigrec_erays::{enhance, lift, render_structured};
use sigrec_solc::{compile_single, CompilerConfig, FunctionSpec, Visibility};

fn main() {
    let sig = FunctionSignature::parse("payout(address,uint256[])").unwrap();
    let contract = compile_single(
        FunctionSpec::new(sig, Visibility::Public),
        &CompilerConfig::default(),
    );

    // Recover the signature from bytecode, lift, and enhance.
    let recovered = SigRec::new().recover(&contract.code);
    let entries: Vec<usize> = recovered.iter().map(|r| r.entry).collect();
    let program = lift(&contract.code, &entries);
    let enhanced = enhance(&program, &recovered);

    let plain = &program.functions[0];
    let plus = &enhanced[0];

    println!(
        "=== Erays (plain register IR), {} statements ===",
        plain.line_count()
    );
    for stmt in plain.body.iter().take(18) {
        println!("  {}", stmt);
    }
    if plain.line_count() > 18 {
        println!("  … {} more", plain.line_count() - 18);
    }

    println!(
        "\n=== Erays+ (signature-informed), {} lines ===",
        plus.lines.len()
    );
    println!("{} {{", plus.header);
    for line in plus.lines.iter().take(18) {
        println!("  {}", line);
    }
    if plus.lines.len() > 18 {
        println!("  … {} more", plus.lines.len() - 18);
    }
    println!("}}");

    println!("\n=== structured view (loop nesting from dominator analysis) ===");
    for line in render_structured(&contract.code, plain).lines().take(14) {
        println!("  {}", line);
    }

    println!(
        "\nreadability delta: +{} types, +{} parameter names, +{} num names, -{} access lines",
        plus.delta.added_types,
        plus.delta.added_param_names,
        plus.delta.added_num_names,
        plus.delta.removed_lines
    );
    assert!(plus.delta.improved());
}
