//! Attack detection (§6.1): recover signatures for a fleet of contracts,
//! then run ParChecker over a transaction stream containing malformed
//! payloads and short-address attacks.
//!
//! ```sh
//! cargo run --example attack_detection
//! ```

use sigrec_corpus::{datasets, generate_traffic, TrafficLabel, TrafficParams};
use sigrec_parchecker::ParChecker;

fn main() {
    // A fleet of deployed contracts (synthesised stand-ins).
    let corpus = datasets::dataset3(120, 2024);
    println!(
        "fleet: {} contracts / {} public functions",
        corpus.contracts.len(),
        corpus.function_count()
    );

    // Recover every signature from bytecode — ParChecker never sees source.
    let checker = ParChecker::from_bytecode(corpus.contracts.iter().map(|c| c.code.as_slice()));
    println!(
        "recovered {} unique signatures\n",
        checker.signature_count()
    );

    // A day of traffic: mostly honest, ~1% malformed, a few attacks.
    let traffic = generate_traffic(
        &corpus,
        &TrafficParams {
            transactions: 2000,
            invalid_rate: 0.01,
            attacks: 8,
            seed: 7,
        },
    );
    let report = checker.sweep(traffic.iter().map(|t| t.calldata.as_slice()));

    println!("transactions examined : {}", report.total);
    println!("validated             : {}", report.valid);
    println!("flagged invalid       : {}", report.invalid);
    println!("unknown function ids  : {}", report.unknown);
    println!("short-address attacks : {}", report.short_address_attacks);

    // Show one flagged attack in detail.
    if let Some(tx) = traffic
        .iter()
        .find(|t| t.label == TrafficLabel::ShortAddressAttack)
    {
        println!("\nexample attack against {}:", tx.target.canonical());
        println!(
            "  calldata ({} bytes — {} short of a full encoding):",
            tx.calldata.len(),
            4 + tx
                .target
                .params
                .iter()
                .map(|p| p.head_size())
                .sum::<usize>()
                - tx.calldata.len()
        );
        println!(
            "  0x{}",
            tx.calldata
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<String>()
        );
        println!("  verdict: {}", checker.check(&tx.calldata));
    }

    let injected = traffic
        .iter()
        .filter(|t| t.label == TrafficLabel::ShortAddressAttack)
        .count();
    assert_eq!(
        report.short_address_attacks, injected,
        "all attacks must be caught"
    );
    println!("\nall {} injected attacks detected", injected);
}
