//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of criterion's API that the in-tree benches use: `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput` and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical machinery it times `sample_size` iterations after one warm-up
//! batch and prints the mean per-iteration wall time.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget (upper bound; one batch is always run).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget (upper bound on timed batches).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &id.to_string(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, mut f: F) {
    let mut b = Bencher {
        iterations: c.sample_size as u64,
        warm_up_time: c.warm_up_time,
        measurement_time: c.measurement_time,
        per_iter_ns: 0.0,
    };
    f(&mut b);
    println!("bench: {:<40} {:>14.1} ns/iter", id, b.per_iter_ns);
}

/// Times the closure handed to `Bencher::iter`.
pub struct Bencher {
    iterations: u64,
    warm_up_time: Duration,
    measurement_time: Duration,
    per_iter_ns: f64,
}

impl Bencher {
    /// Runs `f` once to warm up, then times `sample_size` iterations
    /// (stopping early once the measurement budget is spent).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        let mut done = 0u64;
        for _ in 0..self.iterations {
            std::hint::black_box(f());
            done += 1;
            if start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.per_iter_ns = start.elapsed().as_nanos() as f64 / done.max(1) as f64;
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration workload (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion, &full, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &full, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Per-iteration workload description.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Re-export for parity with criterion's API.
pub use std::hint::black_box;

/// Bundles benchmark functions into one named runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_closure() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs >= 3);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(8));
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(4u32), &4u32, |b, &x| {
            b.iter(|| total += x as u64)
        });
        group.finish();
        assert!(total >= 8);
    }
}
