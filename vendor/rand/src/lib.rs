//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of `rand` 0.8: `RngCore`, `SeedableRng`,
//! the `Rng` extension trait (`gen`, `gen_range`, `gen_bool`) and
//! `rngs::StdRng`. The generator is SplitMix64, so streams differ from
//! upstream `rand`; every in-tree consumer relies only on determinism per
//! seed, never on an exact stream.

/// A source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be produced uniformly by `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly (modulo bias accepted) from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end.wrapping_sub(start) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods over any `RngCore`.
pub trait Rng: RngCore {
    /// Draws a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(1i32..=4);
            assert!((1..=4).contains(&y));
            let z = r.gen_range(0u8..=255);
            let _ = z;
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut r = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut r;
        let v = dyn_rng.gen_range(0..6);
        assert!((0..6).contains(&v));
    }
}
