//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of proptest's API that the in-tree tests use: the `proptest!`,
//! `prop_assert*`, `prop_assume!` and `prop_oneof!` macros, the `Strategy`
//! trait with `prop_map` / `prop_recursive` / `boxed`, range and tuple
//! strategies, `Just`, `any`, `collection::vec` and `array::uniform4`.
//!
//! Semantics differ from upstream in one deliberate way: there is no
//! shrinking. A failing case panics with the generated inputs' `Debug`
//! representation unavailable; the deterministic per-test seed makes every
//! failure reproducible by rerunning the test.

pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config that runs `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a generated case did not complete.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs.
        Reject,
    }

    /// Deterministic per-test seed derived from the test's name (FNV-1a).
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SampleRange};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves, `recurse`
        /// wraps an inner strategy into the composite case. `_desired_size`
        /// and `_expected_branch` are accepted for API compatibility.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]);
            }
            strat
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe generation, used behind `BoxedStrategy`.
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut StdRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A shared, type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            Self(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// `Strategy::prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Chooses uniformly among `alternatives` at generation time.
        #[allow(clippy::new_ret_no_self)] // upstream's Union::new, minus the wrapper type
        pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> BoxedStrategy<V>
        where
            V: 'static,
        {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Self(alternatives).boxed()
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            let i = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Types with a canonical uniform strategy (`any::<T>()`).
    pub trait Arbitrary: rand::Standard {}
    impl<T: rand::Standard> Arbitrary for T {}

    /// The canonical strategy for `A`.
    #[derive(Clone, Debug, Default)]
    pub struct Any<A>(std::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut StdRng) -> A {
            rng.gen()
        }
    }

    /// Uniform values of type `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample_one(rng)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample_one(rng)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (S0.0)
        (S0.0, S1.1)
        (S0.0, S1.1, S2.2)
        (S0.0, S1.1, S2.2, S3.3)
        (S0.0, S1.1, S2.2, S3.3, S4.4)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Arrays of four values drawn from `element`.
    pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
        Uniform4(element)
    }

    /// Strategy produced by [`uniform4`].
    #[derive(Clone)]
    pub struct Uniform4<S>(S);

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            core::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

#[doc(hidden)]
pub mod reexport {
    pub use rand;
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs each contained `#[test]` over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(#[test] fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    <$crate::reexport::rand::rngs::StdRng as $crate::reexport::rand::SeedableRng>::seed_from_u64(
                        $crate::test_runner::seed_for(stringify!($name)),
                    );
                let __strat = ($(($strat),)*);
                for _case in 0..config.cases {
                    let ($($arg,)*) = $crate::strategy::Strategy::generate(&__strat, &mut rng);
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            continue;
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategy alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 1u8..=4) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((1..=4).contains(&b));
        }

        #[test]
        fn assume_rejects(a in 0u32..10) {
            prop_assume!(a != 3);
            prop_assert_ne!(a, 3);
        }

        #[test]
        fn tuples_and_maps(v in (0u8..5, 0u8..5).prop_map(|(x, y)| x as u16 + y as u16)) {
            prop_assert!(v <= 8);
        }

        #[test]
        fn oneof_covers_alternatives(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        use crate::strategy::{BoxedStrategy, Strategy};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        #[derive(Clone, Debug)]
        #[allow(dead_code)] // payloads only exercised via Debug
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat =
            (0u8..8)
                .prop_map(Tree::Leaf)
                .prop_recursive(3, 8, 2, |inner: BoxedStrategy<Tree>| {
                    crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
                });
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 0,
                    Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
                }
            }
            assert!(depth(&t) <= 3);
        }
    }
}
